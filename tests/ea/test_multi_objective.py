"""Tests for the NSGA-II multi-objective mode.

Pins the acceptance contract of the multi-objective issue: hand-checked
dominance/sort/crowding/hypervolume values, engine determinism, and
byte-identical merged Pareto fronts across backends, job counts,
kernels and checkpoint resume.
"""

import numpy as np
import pytest

from repro.core.config import CompressionConfig, EAParameters
from repro.core.fitness import OBJECTIVE_COLUMNS, BatchCompressionRateFitness
from repro.ea.multi_objective import (
    MAXIMIZED_OBJECTIVES,
    MultiObjectiveEngine,
    crowding_distance,
    dominates,
    fast_non_dominated_sort,
    hypervolume,
    minimization_form,
    non_dominated_mask,
    objective_signs,
)
from repro.experiments.checkpoint import CheckpointStore
from repro.experiments.pareto import (
    OBJECTIVE_SETS,
    ParetoRunTask,
    build_pareto_front,
    execute_pareto_task,
    merge_fronts,
    pareto_markdown,
    pareto_task_fingerprint,
)
from repro.parallel import ThreadBackend
from repro.testdata.synthetic import SyntheticSpec, synthetic_test_set

FAST_EA = EAParameters(stagnation_limit=5, max_evaluations=150)


@pytest.fixture(scope="module")
def blocks():
    test_set = synthetic_test_set(
        SyntheticSpec(
            "pareto", n_patterns=24, pattern_bits=24, care_density=0.5, seed=9
        )
    )
    return test_set.blocks(4)


def fast_config(**overrides):
    return CompressionConfig(
        block_length=4, n_vectors=8, runs=2, ea=FAST_EA, **overrides
    )


class TestDominance:
    def test_dominates_strict(self):
        assert dominates(np.asarray([1.0, 2.0]), np.asarray([2.0, 2.0]))
        assert dominates(np.asarray([1.0, 1.0]), np.asarray([2.0, 2.0]))

    def test_equal_vectors_do_not_dominate(self):
        a = np.asarray([1.0, 2.0])
        assert not dominates(a, a)

    def test_incomparable(self):
        assert not dominates(np.asarray([1.0, 3.0]), np.asarray([2.0, 2.0]))
        assert not dominates(np.asarray([2.0, 2.0]), np.asarray([1.0, 3.0]))

    def test_non_dominated_mask(self):
        points = np.asarray(
            [[1.0, 4.0], [2.0, 2.0], [3.0, 3.0], [4.0, 1.0], [2.0, 2.0]]
        )
        # (3,3) is dominated by (2,2); duplicates are both non-dominated.
        assert non_dominated_mask(points).tolist() == [
            True, True, False, True, True,
        ]

    def test_signs_and_minimization_form_roundtrip(self):
        assert MAXIMIZED_OBJECTIVES == {"rate"}
        signs = objective_signs(("rate", "area", "time"))
        assert signs.tolist() == [-1.0, 1.0, 1.0]
        values = np.asarray([[50.0, 30.0, 70.0]])
        flipped = minimization_form(values, ("rate", "area", "time"))
        assert flipped.tolist() == [[-50.0, 30.0, 70.0]]
        back = minimization_form(flipped, ("rate", "area", "time"))
        assert back.tolist() == values.tolist()


class TestFastNonDominatedSort:
    def test_hand_example(self):
        objectives = np.asarray(
            [
                [1.0, 4.0],  # front 0
                [2.0, 2.0],  # front 0
                [4.0, 1.0],  # front 0
                [2.0, 5.0],  # front 1 (dominated by [1,4])
                [3.0, 3.0],  # front 1 (dominated by [2,2])
                [5.0, 5.0],  # front 2
            ]
        )
        fronts = fast_non_dominated_sort(objectives)
        assert [sorted(front.tolist()) for front in fronts] == [
            [0, 1, 2], [3, 4], [5],
        ]

    def test_single_point(self):
        fronts = fast_non_dominated_sort(np.asarray([[1.0, 1.0]]))
        assert [front.tolist() for front in fronts] == [[0]]

    def test_duplicates_share_a_front(self):
        fronts = fast_non_dominated_sort(
            np.asarray([[1.0, 1.0], [1.0, 1.0], [2.0, 2.0]])
        )
        assert [sorted(front.tolist()) for front in fronts] == [[0, 1], [2]]

    def test_empty(self):
        assert fast_non_dominated_sort(np.empty((0, 2))) == []


class TestCrowdingDistance:
    def test_boundaries_infinite_interior_normalized(self):
        front = np.asarray([[1.0, 4.0], [2.0, 3.0], [3.0, 2.0], [4.0, 1.0]])
        distance = crowding_distance(front)
        assert np.isinf(distance[0]) and np.isinf(distance[3])
        # Interior: (3-1)/3 + (4-2)/3 = 4/3 per objective pair.
        assert distance[1] == pytest.approx(4.0 / 3.0)
        assert distance[2] == pytest.approx(4.0 / 3.0)

    def test_two_points_both_infinite(self):
        distance = crowding_distance(np.asarray([[1.0, 2.0], [2.0, 1.0]]))
        assert np.isinf(distance).all()

    def test_zero_span_objective_skipped(self):
        front = np.asarray([[1.0, 5.0], [2.0, 5.0], [3.0, 5.0]])
        distance = crowding_distance(front)
        assert np.isinf(distance[0]) and np.isinf(distance[2])
        assert distance[1] == pytest.approx(1.0)  # only objective 0 counts


class TestHypervolume:
    def test_hand_2d(self):
        points = np.asarray([[1.0, 2.0], [2.0, 1.0]])
        # Ref (3,3): union of 2x1 and 1x2 boxes minus 1x1 overlap... by
        # slicing: width 1 * (3-2) + width 1 * (3-1) = 3.0.
        assert hypervolume(points, np.asarray([3.0, 3.0])) == pytest.approx(3.0)

    def test_hand_2d_with_dominated_point(self):
        points = np.asarray([[1.0, 2.0], [2.0, 2.0], [2.0, 1.0]])
        assert hypervolume(points, np.asarray([3.0, 3.0])) == pytest.approx(3.0)

    def test_single_3d_box(self):
        points = np.asarray([[1.0, 2.0, 3.0]])
        reference = np.asarray([3.0, 4.0, 7.0])
        assert hypervolume(points, reference) == pytest.approx(2 * 2 * 4)

    def test_points_outside_reference_ignored(self):
        points = np.asarray([[1.0, 5.0], [2.0, 1.0]])
        assert hypervolume(points, np.asarray([3.0, 3.0])) == pytest.approx(2.0)

    def test_empty(self):
        assert hypervolume(np.empty((0, 2)), np.asarray([1.0, 1.0])) == 0.0


class TestMultiObjectiveEngine:
    def engine(self, blocks, seed=5, objectives=OBJECTIVE_COLUMNS):
        fitness = BatchCompressionRateFitness(
            blocks, n_vectors=8, block_length=4
        )
        return MultiObjectiveEngine(
            fitness=fitness,
            genome_length=8 * 4,
            objectives=objectives,
            params=FAST_EA,
            seed=seed,
        )

    def test_requires_two_objectives(self, blocks):
        with pytest.raises(ValueError, match="at least 2"):
            self.engine(blocks, objectives=("rate",))

    def test_rejects_unknown_objective(self, blocks):
        with pytest.raises(ValueError, match="unknown objectives"):
            self.engine(blocks, objectives=("rate", "power"))

    def test_rejects_duplicate_objectives(self, blocks):
        with pytest.raises(ValueError, match="duplicate"):
            self.engine(blocks, objectives=("rate", "rate"))

    def test_requires_objective_fitness(self):
        with pytest.raises(TypeError, match="evaluate_objectives"):
            MultiObjectiveEngine(fitness=object(), genome_length=4)

    def test_seeded_runs_identical(self, blocks):
        first = self.engine(blocks, seed=5).run()
        second = self.engine(blocks, seed=5).run()
        assert first.evaluations == second.evaluations
        assert first.generations == second.generations
        assert [p.values for p in first.front] == [
            p.values for p in second.front
        ]
        for a, b in zip(first.front, second.front):
            assert np.array_equal(a.genome, b.genome)

    def test_front_is_mutually_non_dominated_and_unique(self, blocks):
        result = self.engine(blocks, seed=7).run()
        values = [p.values for p in result.front]
        assert len(set(values)) == len(values)
        matrix = minimization_form(
            np.asarray(values, dtype=np.float64), result.objectives
        )
        assert non_dominated_mask(matrix).all()

    def test_front_values_finite(self, blocks):
        result = self.engine(blocks, seed=7).run()
        assert len(result.front) >= 1
        for point in result.front:
            assert all(np.isfinite(v) for v in point.values)


class TestBuildParetoFront:
    def test_job_count_and_backend_invariance(self, blocks):
        serial = build_pareto_front(blocks, fast_config(), seed=13)
        threaded = build_pareto_front(
            blocks, fast_config(), seed=13, backend=ThreadBackend(4)
        )
        assert pareto_markdown(serial) == pareto_markdown(threaded)

    def test_kernel_invariance(self, blocks):
        outputs = {
            kernel: pareto_markdown(
                build_pareto_front(
                    blocks, fast_config(kernel=kernel), seed=13
                )
            )
            for kernel in ("bitpack", "gemm")
        }
        assert outputs["bitpack"] == outputs["gemm"]

    def test_objective_subset_columns(self, blocks):
        result = build_pareto_front(
            blocks, fast_config(), OBJECTIVE_SETS["rate+area"], seed=13
        )
        assert result.objectives == ("rate", "area")
        for point in result.front:
            assert len(point.values) == 2

    def test_standard_circuit_has_tradeoff_front(self):
        from repro.cli import _calibrated_test_set

        test_set = _calibrated_test_set("s298", seed=1)
        result = build_pareto_front(
            test_set.blocks(8),
            CompressionConfig(
                block_length=8,
                n_vectors=12,
                runs=2,
                ea=EAParameters(stagnation_limit=8, max_evaluations=300),
            ),
            seed=1,
        )
        assert len(result.front) >= 2
        assert result.front_hypervolume() > 0.0

    def test_merge_fronts_filters_cross_run_domination(self, blocks):
        config = fast_config()
        tasks = [
            ParetoRunTask(
                run_index=index,
                blocks=blocks,
                config=config,
                objectives=OBJECTIVE_SETS["rate+area+time"],
                seed_sequence=child,
            )
            for index, child in enumerate(
                np.random.SeedSequence(13).spawn(config.runs)
            )
        ]
        outcomes = [execute_pareto_task(task) for task in tasks]
        front = merge_fronts(outcomes, OBJECTIVE_SETS["rate+area+time"])
        values = [p.values for p in front]
        assert len(set(values)) == len(values)
        matrix = minimization_form(
            np.asarray(values), OBJECTIVE_SETS["rate+area+time"]
        )
        assert non_dominated_mask(matrix).all()

    def test_fingerprint_distinguishes_objectives_and_runs(self, blocks):
        config = fast_config()
        child = np.random.SeedSequence(13).spawn(1)[0]

        def fingerprint(objectives, run_index=0):
            return pareto_task_fingerprint(
                ParetoRunTask(
                    run_index=run_index,
                    blocks=blocks,
                    config=config,
                    objectives=objectives,
                    seed_sequence=child,
                )
            )

        base = fingerprint(OBJECTIVE_SETS["rate+area+time"])
        assert fingerprint(OBJECTIVE_SETS["rate+area"]) != base
        assert fingerprint(OBJECTIVE_SETS["rate+area+time"], 1) != base

    def test_checkpoint_resume_byte_parity(self, blocks, tmp_path):
        reference = pareto_markdown(
            build_pareto_front(blocks, fast_config(), seed=13)
        )
        store = CheckpointStore(root=tmp_path / "checkpoints")
        first = build_pareto_front(
            blocks, fast_config(), seed=13, checkpoint=store
        )
        assert pareto_markdown(first) == reference
        from repro.parallel import FaultToleranceStats

        stats = FaultToleranceStats()
        resumed = build_pareto_front(
            blocks, fast_config(), seed=13, checkpoint=store, stats=stats
        )
        assert pareto_markdown(resumed) == reference
        assert stats.resumed == fast_config().runs


class TestParetoMarkdown:
    def test_report_shape(self, blocks):
        text = pareto_markdown(build_pareto_front(blocks, fast_config(), seed=13))
        assert text.startswith("### Pareto front (rate, area, time)")
        assert "| # | Rate % | Area bits | Time cycles |" in text
        assert "- hypervolume:" in text
        assert text.endswith("\n")

"""Unit and integration tests for the evolutionary engine (Figure 1)."""

import numpy as np
import pytest

from repro.core.config import EAParameters
from repro.ea.engine import EvolutionaryEngine
from repro.ea.genome import random_genome, validate_genome


def count_ones_fitness(genome: np.ndarray) -> float:
    """Toy maximization problem: number of genes equal to 1."""
    return float((genome == 1).sum())


def make_engine(**kwargs) -> EvolutionaryEngine:
    params = kwargs.pop(
        "params",
        EAParameters(stagnation_limit=30, max_evaluations=2000),
    )
    return EvolutionaryEngine(
        fitness=kwargs.pop("fitness", count_ones_fitness),
        genome_length=kwargs.pop("genome_length", 24),
        params=params,
        seed=kwargs.pop("seed", 99),
        **kwargs,
    )


class TestEngineBasics:
    def test_solves_onemax(self):
        result = make_engine().run()
        assert result.best_fitness >= 20  # near-optimal on 24 genes

    def test_deterministic_under_seed(self):
        first = make_engine(seed=5).run()
        second = make_engine(seed=5).run()
        assert first.best_fitness == second.best_fitness
        assert (first.best_genome == second.best_genome).all()

    def test_history_is_monotone_in_best(self):
        result = make_engine().run()
        best_so_far = -np.inf
        for stats in result.history:
            assert stats.best_fitness >= best_so_far
            best_so_far = stats.best_fitness

    def test_terminates_by_stagnation(self):
        params = EAParameters(stagnation_limit=5)
        result = make_engine(params=params).run()
        assert "stagnation" in result.terminated_by

    def test_terminates_by_evaluations(self):
        params = EAParameters(stagnation_limit=10_000, max_evaluations=50)
        result = make_engine(params=params).run()
        assert "evaluations" in result.terminated_by
        assert result.evaluations >= 50

    def test_terminates_by_generations(self):
        params = EAParameters(stagnation_limit=10_000, max_generations=7)
        result = make_engine(params=params).run()
        assert result.generations == 7
        assert "generations" in result.terminated_by

    def test_invalid_genome_length(self):
        with pytest.raises(ValueError):
            make_engine(genome_length=0)


class TestEngineRepair:
    def test_repair_applied_to_every_individual(self):
        def repair(genome: np.ndarray) -> np.ndarray:
            fixed = genome.copy()
            fixed[0] = 2
            return fixed

        seen = []

        def spy_fitness(genome: np.ndarray) -> float:
            seen.append(genome.copy())
            return count_ones_fitness(genome)

        make_engine(fitness=spy_fitness, repair=repair).run()
        assert seen, "fitness must have been called"
        assert all(genome[0] == 2 for genome in seen)


class TestEngineSeeding:
    def test_seed_genome_survives_if_fittest(self):
        optimal = np.ones(24, dtype=np.int8)
        result = make_engine(
            initial_genomes=[optimal],
            params=EAParameters(stagnation_limit=3),
        ).run()
        assert result.best_fitness == 24.0

    def test_seed_genome_length_checked(self):
        with pytest.raises(ValueError):
            make_engine(initial_genomes=[np.ones(3, dtype=np.int8)])


class TestEngineBudget:
    def test_evaluations_counted(self):
        params = EAParameters(stagnation_limit=4)
        result = make_engine(params=params).run()
        # S initial + C per generation (crossover may add one extra
        # evaluation when it lands on the last slot of a generation).
        assert result.evaluations >= 10 + 4 * 5

    def test_population_never_exceeds_s_best(self):
        """After truncation, champion fitness appears in history."""
        result = make_engine().run()
        assert result.history[-1].best_fitness <= result.best_fitness


class TestGenomeHelpers:
    def test_random_genome_range(self):
        genome = random_genome(100, np.random.default_rng(0))
        assert genome.min() >= 0 and genome.max() <= 2

    def test_validate_rejects_bad_values(self):
        with pytest.raises(ValueError):
            validate_genome(np.asarray([0, 3], dtype=np.int8))

    def test_validate_rejects_empty(self):
        with pytest.raises(ValueError):
            validate_genome(np.asarray([], dtype=np.int8))

    def test_validate_rejects_2d(self):
        with pytest.raises(ValueError):
            validate_genome(np.zeros((2, 2), dtype=np.int8))

    def test_random_genome_bad_length(self):
        with pytest.raises(ValueError):
            random_genome(0, np.random.default_rng(0))

"""Unit tests for termination conditions."""

import pytest

from repro.ea.termination import (
    AnyOf,
    EvaluationLimit,
    GenerationLimit,
    LoopState,
    StagnationLimit,
)


def state(generation=0, evaluations=0, stagnant=0, best=0.0) -> LoopState:
    return LoopState(
        generation=generation,
        evaluations=evaluations,
        generations_without_improvement=stagnant,
        best_fitness=best,
    )


class TestStagnationLimit:
    def test_fires_at_limit(self):
        condition = StagnationLimit(5)
        assert not condition.should_stop(state(stagnant=4))
        assert condition.should_stop(state(stagnant=5))

    def test_invalid(self):
        with pytest.raises(ValueError):
            StagnationLimit(0)

    def test_describe(self):
        assert StagnationLimit(500).describe() == "stagnation(500)"


class TestEvaluationLimit:
    def test_fires_at_limit(self):
        condition = EvaluationLimit(100)
        assert not condition.should_stop(state(evaluations=99))
        assert condition.should_stop(state(evaluations=100))

    def test_invalid(self):
        with pytest.raises(ValueError):
            EvaluationLimit(0)


class TestGenerationLimit:
    def test_fires_at_limit(self):
        condition = GenerationLimit(10)
        assert not condition.should_stop(state(generation=9))
        assert condition.should_stop(state(generation=10))

    def test_invalid(self):
        with pytest.raises(ValueError):
            GenerationLimit(0)


class TestAnyOf:
    def test_any_sub_condition_fires(self):
        combined = AnyOf(StagnationLimit(5), EvaluationLimit(10))
        assert combined.should_stop(state(evaluations=10))
        assert combined.fired == EvaluationLimit(10)

    def test_none_fire(self):
        combined = AnyOf(StagnationLimit(5), EvaluationLimit(10))
        assert not combined.should_stop(state(stagnant=1, evaluations=1))
        assert combined.fired is None

    def test_reports_first_firing(self):
        combined = AnyOf(StagnationLimit(1), EvaluationLimit(1))
        combined.should_stop(state(stagnant=1, evaluations=1))
        assert combined.fired == StagnationLimit(1)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            AnyOf()

    def test_describe(self):
        combined = AnyOf(StagnationLimit(2), GenerationLimit(3))
        assert combined.describe() == "any(stagnation(2), generations(3))"

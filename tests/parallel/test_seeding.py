"""Tests for reproducible seed derivation."""

import numpy as np
import pytest

from repro.parallel import spawn_seeds


class TestSpawnSeeds:
    def test_deterministic_for_same_master_seed(self):
        first = spawn_seeds(2005, 5)
        second = spawn_seeds(2005, 5)
        for a, b in zip(first, second):
            assert a.entropy == b.entropy
            assert a.spawn_key == b.spawn_key

    def test_children_produce_distinct_streams(self):
        children = spawn_seeds(7, 4)
        draws = {
            np.random.default_rng(child).integers(0, 2**63 - 1)
            for child in children
        }
        assert len(draws) == 4

    def test_different_master_seeds_diverge(self):
        a = np.random.default_rng(spawn_seeds(1, 1)[0]).integers(0, 2**63 - 1)
        b = np.random.default_rng(spawn_seeds(2, 1)[0]).integers(0, 2**63 - 1)
        assert a != b

    def test_accepts_seed_sequence_for_spawn_trees(self):
        parent = spawn_seeds(2005, 2)[0]
        grandchildren = spawn_seeds(parent, 3)
        assert len(grandchildren) == 3
        assert all(
            child.entropy == parent.entropy for child in grandchildren
        )

    def test_zero_children_allowed(self):
        assert spawn_seeds(1, 0) == ()

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_seeds(1, -1)

    def test_matches_numpy_spawn_semantics(self):
        """spawn_seeds(seed, n) is exactly SeedSequence(seed).spawn(n) —
        the documented contract callers rely on for reproducibility."""
        ours = spawn_seeds(42, 3)
        theirs = np.random.SeedSequence(42).spawn(3)
        for a, b in zip(ours, theirs):
            assert a.spawn_key == b.spawn_key

"""Tests for the deterministic fault-injection harness and the
fault-tolerance paths it exercises (retry, timeout, crash, downgrade,
prompt interrupts, failure ordering)."""

import pickle
import time

import pytest

from repro.parallel import (
    Fault,
    FaultPlan,
    FaultToleranceStats,
    InjectedFaultError,
    ProcessBackend,
    RetryPolicy,
    SerialBackend,
    TaskTimeoutError,
    ThreadBackend,
    TransientTaskError,
    WorkerCrashError,
    chaos_wrap,
)
from repro.parallel.chaos import DIE, HANG, RAISE, default_task_key

FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.01, max_delay=0.05)


# Module-level so ProcessBackend can pickle them.
def _times_ten(x):
    return x * 10


def _fail_with_index(x):
    raise RuntimeError(f"unit {x} failed")


def _interrupt_on_zero(x):
    if x == 0:
        raise KeyboardInterrupt
    time.sleep(2.0)
    return x


class TestFault:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            Fault(kind="explode")

    def test_rejects_negative_seconds(self):
        with pytest.raises(ValueError):
            Fault(kind=HANG, seconds=-1.0)


class TestDefaultTaskKey:
    def test_run_task_like_items_key_by_identity(self):
        class Config:
            block_length = 8
            n_vectors = 16

        class Task:
            run_index = 1
            config = Config()

        assert default_task_key(Task()) == "K8L16r1"

    def test_plain_items_key_by_str(self):
        assert default_task_key(3) == "3"


class TestFaultPlan:
    def test_attempt_counter_is_monotonic(self, tmp_path):
        plan = FaultPlan(state_dir=tmp_path, faults={})
        assert [plan.begin_attempt("a") for _ in range(3)] == [0, 1, 2]
        assert plan.attempts("a") == 3
        assert plan.attempts("b") == 0

    def test_attempt_counter_shared_across_plan_objects(self, tmp_path):
        # Two plan objects over the same directory model two processes.
        first = FaultPlan(state_dir=tmp_path, faults={})
        second = FaultPlan(state_dir=tmp_path, faults={})
        assert first.begin_attempt("k") == 0
        assert second.begin_attempt("k") == 1

    def test_inject_faults_only_planned_attempts(self, tmp_path):
        plan = FaultPlan(state_dir=tmp_path, faults={"3": {0: Fault(RAISE)}})
        with pytest.raises(InjectedFaultError):
            plan.inject("3")
        plan.inject("3")  # attempt 1 is unlisted: clean
        plan.inject("other")  # unlisted key: clean

    def test_non_retryable_raise_is_plain_runtime_error(self, tmp_path):
        plan = FaultPlan(
            state_dir=tmp_path,
            faults={"x": {0: Fault(RAISE, retryable=False)}},
        )
        with pytest.raises(RuntimeError) as info:
            plan.inject("x")
        assert not isinstance(info.value, TransientTaskError)

    def test_chaos_function_is_picklable(self, tmp_path):
        wrapped = chaos_wrap(
            _times_ten, FaultPlan(state_dir=tmp_path, faults={})
        )
        clone = pickle.loads(pickle.dumps(wrapped))
        assert clone(4) == 40


BACKENDS = {
    "serial": lambda: SerialBackend(),
    "thread": lambda: ThreadBackend(3),
    "process": lambda: ProcessBackend(3),
}


def _backend_with_jobs(name, jobs):
    if name == "serial":
        return SerialBackend()
    return {"thread": ThreadBackend, "process": ProcessBackend}[name](jobs)


@pytest.mark.chaos
@pytest.mark.parametrize("name", list(BACKENDS))
class TestInjectedRaises:
    def test_transient_raise_absorbed_by_retry(self, name, tmp_path):
        plan = FaultPlan(state_dir=tmp_path, faults={"2": {0: Fault(RAISE)}})
        stats = FaultToleranceStats()
        results = BACKENDS[name]().map(
            chaos_wrap(_times_ten, plan),
            list(range(5)),
            retry=FAST_RETRY,
            stats=stats,
        )
        assert results == [0, 10, 20, 30, 40]
        assert stats.retries == 1
        assert plan.attempts("2") == 2

    def test_injected_raise_terminal_without_retry(self, name, tmp_path):
        plan = FaultPlan(state_dir=tmp_path, faults={"1": {0: Fault(RAISE)}})
        with pytest.raises(InjectedFaultError):
            BACKENDS[name]().map(chaos_wrap(_times_ten, plan), list(range(4)))
        assert plan.attempts("1") == 1


@pytest.mark.chaos
@pytest.mark.parametrize("name", list(BACKENDS))
@pytest.mark.parametrize("jobs", [2, 3])
class TestFailureOrdering:
    def test_lowest_index_failure_wins(self, name, jobs):
        backend = _backend_with_jobs(name, jobs)
        with pytest.raises(RuntimeError, match="unit 0 failed"):
            backend.map(_fail_with_index, list(range(6)))

    def test_permanent_failure_wins_over_transient_ones(self, name, jobs, tmp_path):
        backend = _backend_with_jobs(name, jobs)
        # Unit 2 fails on every attempt; the others fail once and then
        # recover.  Only unit 2 can fail permanently, so the map must
        # re-raise *its* exhausted failure, never a transient one.
        faults = {
            str(v): {a: Fault(RAISE) for a in range(5)} if v == 2
            else {0: Fault(RAISE)}
            for v in range(6)
        }
        plan = FaultPlan(state_dir=tmp_path, faults=faults)
        with pytest.raises(InjectedFaultError, match="task '2'"):
            backend.map(
                chaos_wrap(_times_ten, plan), list(range(6)), retry=FAST_RETRY
            )


@pytest.mark.chaos
class TestHangsAndTimeouts:
    def test_hung_task_times_out_and_retries(self, tmp_path):
        plan = FaultPlan(
            state_dir=tmp_path,
            faults={"1": {0: Fault(HANG, seconds=1.0)}},
        )
        stats = FaultToleranceStats()
        results = ThreadBackend(3).map(
            chaos_wrap(_times_ten, plan),
            list(range(4)),
            retry=FAST_RETRY,
            timeout=0.15,
            stats=stats,
        )
        assert results == [0, 10, 20, 30]
        assert stats.timeouts >= 1
        assert stats.retries >= 1

    def test_timeout_without_retry_raises(self, tmp_path):
        plan = FaultPlan(
            state_dir=tmp_path,
            faults={"0": {0: Fault(HANG, seconds=1.0)}},
        )
        with pytest.raises(TaskTimeoutError):
            ThreadBackend(2).map(
                chaos_wrap(_times_ten, plan), list(range(3)), timeout=0.15
            )

    def test_serial_backend_ignores_timeout(self, tmp_path):
        plan = FaultPlan(
            state_dir=tmp_path,
            faults={"0": {0: Fault(HANG, seconds=0.05)}},
        )
        assert SerialBackend().map(
            chaos_wrap(_times_ten, plan), [0, 1], timeout=0.001
        ) == [0, 10]


@pytest.mark.chaos
@pytest.mark.slow
class TestWorkerDeath:
    def test_worker_death_absorbed_by_rebuild_and_retry(self, tmp_path):
        plan = FaultPlan(state_dir=tmp_path, faults={"2": {0: Fault(DIE)}})
        stats = FaultToleranceStats()
        results = ProcessBackend(3).map(
            chaos_wrap(_times_ten, plan),
            list(range(6)),
            retry=FAST_RETRY,
            stats=stats,
        )
        assert results == [0, 10, 20, 30, 40, 50]
        assert stats.crashes >= 1
        assert stats.pool_rebuilds >= 1

    def test_worker_death_terminal_without_retry(self, tmp_path):
        plan = FaultPlan(state_dir=tmp_path, faults={"1": {0: Fault(DIE)}})
        with pytest.raises(WorkerCrashError):
            ProcessBackend(3).map(chaos_wrap(_times_ten, plan), list(range(4)))

    def test_repeated_breakage_downgrades_to_thread_pool(self, tmp_path):
        # The same task dies on attempts 0 and 1: the first breakage
        # rebuilds the process pool, the second downgrades to threads,
        # where attempt 2 (unlisted: clean) finally succeeds.
        plan = FaultPlan(
            state_dir=tmp_path,
            faults={"0": {0: Fault(DIE), 1: Fault(DIE)}},
        )
        stats = FaultToleranceStats()
        results = ProcessBackend(2).map(
            chaos_wrap(_times_ten, plan),
            list(range(4)),
            retry=RetryPolicy(max_attempts=4, base_delay=0.01),
            stats=stats,
        )
        assert results == [0, 10, 20, 30]
        assert stats.crashes == 2
        assert stats.pool_rebuilds == 1
        assert stats.downgrades == 1


@pytest.mark.chaos
class TestPromptInterrupt:
    def test_keyboard_interrupt_propagates_immediately(self):
        # Workers sleep 2s each; the interrupt from unit 0 must not
        # wait for them — it cancels pending work and surfaces at once.
        backend = ThreadBackend(2)
        start = time.monotonic()
        with pytest.raises(KeyboardInterrupt):
            backend.map(_interrupt_on_zero, list(range(4)))
        assert time.monotonic() - start < 1.5

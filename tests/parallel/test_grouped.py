"""Tests for the grouped fan-out helper."""

from repro.parallel import SerialBackend, ThreadBackend, grouped_map


def _double(x):
    return 2 * x


class TestGroupedMap:
    def test_results_regrouped_in_group_and_item_order(self):
        groups = [("a", [1, 2]), ("b", [3]), ("c", [4, 5, 6])]
        result = grouped_map(SerialBackend(), _double, groups)
        assert result == [[2, 4], [6], [8, 10, 12]]

    def test_progress_one_line_per_group_in_group_order(self):
        lines = []
        grouped_map(
            ThreadBackend(3),
            _double,
            [("a", [1, 2]), ("b", [3]), ("c", [4])],
            progress=lines.append,
        )
        assert lines == ["  a: done", "  b: done", "  c: done"]

    def test_describe_builds_the_line(self):
        lines = []
        grouped_map(
            SerialBackend(),
            _double,
            [("K=8", [1, 2, 3])],
            progress=lines.append,
            describe=lambda label, n, seconds: f"{label}|{n}",
        )
        assert lines == ["K=8|3"]

    def test_empty_group_does_not_stall_later_lines(self):
        lines = []
        result = grouped_map(
            SerialBackend(),
            _double,
            [("empty", []), ("full", [7])],
            progress=lines.append,
        )
        assert result == [[], [14]]
        assert lines == ["  empty: done", "  full: done"]

    def test_no_groups(self):
        assert grouped_map(SerialBackend(), _double, []) == []

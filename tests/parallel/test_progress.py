"""Tests for the ordered progress fan-in."""

import threading

import pytest

from repro.parallel import OrderedProgress


class TestOrderedProgress:
    def test_in_order_publishes_flow_through(self):
        seen = []
        fan_in = OrderedProgress(seen.append)
        for index in range(3):
            fan_in.publish(index, f"line {index}")
        assert seen == ["line 0", "line 1", "line 2"]

    def test_out_of_order_publishes_are_buffered(self):
        seen = []
        fan_in = OrderedProgress(seen.append)
        fan_in.publish(2, "c")
        fan_in.publish(0, "a")
        assert seen == ["a"]  # 1 still missing, so 2 is held back
        fan_in.publish(1, "b")
        assert seen == ["a", "b", "c"]

    def test_none_sink_discards_everything(self):
        fan_in = OrderedProgress(None)
        fan_in.publish(1, "late")
        fan_in.publish(0, "early")
        assert fan_in.next_index == 2

    def test_none_message_advances_without_emitting(self):
        seen = []
        fan_in = OrderedProgress(seen.append)
        fan_in.publish(0, None)
        fan_in.publish(1, "visible")
        assert seen == ["visible"]

    def test_duplicate_index_rejected(self):
        fan_in = OrderedProgress(None)
        fan_in.publish(0, "once")
        with pytest.raises(ValueError):
            fan_in.publish(0, "twice")
        fan_in.publish(2, "pending twice")
        with pytest.raises(ValueError):
            fan_in.publish(2, "pending twice")

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            OrderedProgress(None).publish(-1, "nope")

    def test_threaded_publishes_release_in_index_order(self):
        seen = []
        fan_in = OrderedProgress(seen.append)
        indices = [3, 1, 4, 0, 2, 5]
        barrier = threading.Barrier(len(indices))

        def worker(index):
            barrier.wait()
            fan_in.publish(index, str(index))

        threads = [
            threading.Thread(target=worker, args=(index,)) for index in indices
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert seen == ["0", "1", "2", "3", "4", "5"]

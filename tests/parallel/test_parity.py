"""Serial-vs-parallel bit-for-bit parity of the whole stack.

The contract the subsystem is built around: a given seed and workload
produce *identical* results — rates, MV sets, run order — on every
backend and at every job count.  These tests pin that down at the
optimizer layer, the experiment-runner layer, and the table layer.
"""

import numpy as np
import pytest

from repro.core.blocks import BlockSet
from repro.core.config import CompressionConfig, EAParameters
from repro.core.optimizer import EAMVOptimizer, execute_run_task
from repro.experiments.runner import ExperimentBudget, run_row
from repro.experiments.tables import build_table1
from repro.parallel import (
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    spawn_seeds,
)
from repro.testdata.registry import TABLE1_STUCK_AT, row_by_name

STRUCTURED_TEXT = ("1100" * 8 + "11XX" * 4 + "0000" * 6 + "10X0" * 3) * 2

MICRO = ExperimentBudget(
    runs=2,
    stagnation_limit=8,
    max_evaluations=250,
    kl_grid=((8, 16),),
    search_bit_cap=20_000,
)


def small_config(runs: int = 4) -> CompressionConfig:
    return CompressionConfig(
        block_length=4,
        n_vectors=6,
        runs=runs,
        ea=EAParameters(stagnation_limit=20, max_evaluations=400),
    )


def optimize_with(backend):
    blocks = BlockSet.from_string(STRUCTURED_TEXT, 4)
    return EAMVOptimizer(small_config(), seed=7, backend=backend).optimize(
        blocks
    )


class TestOptimizerParity:
    @pytest.fixture(scope="class")
    def serial_result(self):
        return optimize_with(SerialBackend())

    def test_thread_backend_matches_serial(self, serial_result):
        result = optimize_with(ThreadBackend(4))
        assert [r.rate for r in result.runs] == [
            r.rate for r in serial_result.runs
        ]
        assert [r.mv_set for r in result.runs] == [
            r.mv_set for r in serial_result.runs
        ]

    @pytest.mark.slow
    def test_process_backend_matches_serial(self, serial_result):
        result = optimize_with(ProcessBackend(4))
        assert [r.rate for r in result.runs] == [
            r.rate for r in serial_result.runs
        ]
        assert [r.mv_set for r in result.runs] == [
            r.mv_set for r in serial_result.runs
        ]
        assert [r.ea_result.evaluations for r in result.runs] == [
            r.ea_result.evaluations for r in serial_result.runs
        ]

    def test_jobs_one_pool_matches_serial(self, serial_result):
        result = optimize_with(ThreadBackend(1))
        assert result.mean_rate == serial_result.mean_rate
        assert result.best_mv_set == serial_result.best_mv_set

    def test_run_outcomes_keep_run_index_order(self, serial_result):
        assert [r.run_index for r in serial_result.runs] == list(
            range(len(serial_result.runs))
        )

    def test_build_run_tasks_is_idempotent(self):
        """Building (or inspecting) tasks must not perturb a later
        optimize(): the per-run seed children are spawned once."""
        blocks = BlockSet.from_string(STRUCTURED_TEXT, 4)
        reference = EAMVOptimizer(small_config(), seed=7).optimize(blocks)
        optimizer = EAMVOptimizer(small_config(), seed=7)
        first_tasks = optimizer.build_run_tasks(blocks)
        second_tasks = optimizer.build_run_tasks(blocks)
        assert [t.seed_sequence.spawn_key for t in first_tasks] == [
            t.seed_sequence.spawn_key for t in second_tasks
        ]
        peeked_then_optimized = optimizer.optimize(blocks)
        assert [r.rate for r in peeked_then_optimized.runs] == [
            r.rate for r in reference.runs
        ]

    def test_tasks_are_pure_functions_of_their_fields(self):
        """Executing a task twice gives the same outcome — the property
        that makes completion order irrelevant."""
        blocks = BlockSet.from_string(STRUCTURED_TEXT, 4)
        task = EAMVOptimizer(small_config(), seed=7).build_run_tasks(blocks)[1]
        first = execute_run_task(task)
        second = execute_run_task(task)
        assert first.rate == second.rate
        assert first.mv_set == second.mv_set

    def test_seed_sequence_seed_equals_spawned_child(self):
        """Passing a pre-spawned child is how higher layers build the
        spawn tree; it must behave exactly like the optimizer's own
        spawn of the same parent."""
        blocks = BlockSet.from_string(STRUCTURED_TEXT, 4)
        via_helper = EAMVOptimizer(
            small_config(), seed=spawn_seeds(99, 1)[0]
        ).optimize(blocks)
        via_numpy = EAMVOptimizer(
            small_config(), seed=np.random.SeedSequence(99).spawn(1)[0]
        ).optimize(blocks)
        assert via_helper.mean_rate == via_numpy.mean_rate
        assert via_helper.best_mv_set == via_numpy.best_mv_set


class TestRunnerParity:
    @pytest.fixture(scope="class")
    def serial_row(self):
        row = row_by_name(TABLE1_STUCK_AT, "s349")
        return run_row(row, "stuck-at", budget=MICRO, seed=5)

    def test_thread_backend_matches_serial(self, serial_row):
        row = row_by_name(TABLE1_STUCK_AT, "s349")
        parallel = run_row(
            row, "stuck-at", budget=MICRO, seed=5, backend=ThreadBackend(4)
        )
        assert parallel.measured == serial_row.measured

    @pytest.mark.slow
    def test_process_backend_matches_serial(self, serial_row):
        row = row_by_name(TABLE1_STUCK_AT, "s349")
        parallel = run_row(
            row, "stuck-at", budget=MICRO, seed=5, backend=ProcessBackend(4)
        )
        assert parallel.measured == serial_row.measured

    def test_progress_lines_arrive_in_configuration_order(self):
        row = row_by_name(TABLE1_STUCK_AT, "s349")
        lines = []
        run_row(
            row,
            "stuck-at",
            budget=MICRO,
            seed=5,
            backend=ThreadBackend(4),
            progress=lines.append,
        )
        assert len(lines) == 1 + len(MICRO.kl_grid)
        assert "EA K=12,L=64" in lines[0]
        assert "EA-Best K=8,L=16" in lines[1]


class TestTableParity:
    @pytest.mark.slow
    def test_table_rows_match_at_any_job_count(self):
        """Both scheduling policies — row fan-out (rows >= jobs) and
        backend-down (rows < jobs) — must match the serial build."""
        circuits = ("s349", "s298")
        serial = build_table1(circuits=circuits, budget=MICRO, seed=4)
        for jobs in (2, 4):
            parallel = build_table1(
                circuits=circuits,
                budget=MICRO,
                seed=4,
                backend=ProcessBackend(jobs),
            )
            assert [row.measured for row in parallel.rows] == [
                row.measured for row in serial.rows
            ]

    def test_row_progress_released_in_row_order(self):
        circuits = ("s349", "s298")
        lines = []
        build_table1(
            circuits=circuits,
            budget=MICRO,
            seed=4,
            backend=ThreadBackend(2),
            progress=lines.append,
        )
        assert [line.split()[0] for line in lines] == ["s349", "s298"]

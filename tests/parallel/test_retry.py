"""Tests for retry policies, backoff math and fault accounting."""

import numpy as np
import pytest

from repro.parallel import (
    DEFAULT_RETRYABLE,
    NO_RETRY,
    FaultToleranceStats,
    ProcessBackend,
    RetryPolicy,
    SerialBackend,
    TaskTimeoutError,
    ThreadBackend,
    TransientTaskError,
    WorkerCrashError,
)
from repro.parallel.retry import jitter_entropy


class TestPolicyValidation:
    def test_defaults_are_sane(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 3
        assert policy.retryable == DEFAULT_RETRYABLE

    def test_no_retry_is_single_attempt(self):
        assert NO_RETRY.max_attempts == 1

    def test_rejects_zero_attempts(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-0.1)

    def test_rejects_shrinking_backoff(self):
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)

    def test_rejects_jitter_outside_unit_interval(self):
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)

    def test_with_updates_returns_modified_copy(self):
        base = RetryPolicy()
        tweaked = base.with_updates(max_attempts=7)
        assert tweaked.max_attempts == 7
        assert base.max_attempts == 3


class TestClassification:
    @pytest.mark.parametrize(
        "error",
        [
            TaskTimeoutError("t"),
            WorkerCrashError("c"),
            TransientTaskError("x"),
            TimeoutError(),
            OSError("flaky fs"),
            ConnectionResetError(),  # OSError subclass
        ],
    )
    def test_default_retryable_failures(self, error):
        assert RetryPolicy().is_retryable(error)

    @pytest.mark.parametrize(
        "error", [ValueError("bug"), TypeError("bug"), RuntimeError("bug")]
    )
    def test_deterministic_bugs_are_terminal(self, error):
        assert not RetryPolicy().is_retryable(error)

    @pytest.mark.parametrize("error", [KeyboardInterrupt(), SystemExit(1)])
    def test_interrupts_never_retryable(self, error):
        # Even a policy that claims BaseException is retryable must not
        # swallow an interrupt.
        policy = RetryPolicy(retryable=(BaseException,))
        assert not policy.is_retryable(error)

    def test_custom_classification(self):
        policy = RetryPolicy(retryable=(ValueError,))
        assert policy.is_retryable(ValueError())
        assert not policy.is_retryable(TaskTimeoutError("t"))


class TestBackoff:
    def test_first_attempt_has_no_delay(self):
        assert RetryPolicy().delay_before(1) == 0.0

    def test_exponential_growth_without_jitter(self):
        policy = RetryPolicy(
            base_delay=0.1, backoff_factor=2.0, max_delay=10.0, jitter=0.0
        )
        assert policy.delay_before(2) == pytest.approx(0.1)
        assert policy.delay_before(3) == pytest.approx(0.2)
        assert policy.delay_before(4) == pytest.approx(0.4)

    def test_delay_caps_at_max_delay(self):
        policy = RetryPolicy(
            base_delay=1.0, backoff_factor=10.0, max_delay=3.0, jitter=0.0
        )
        assert policy.delay_before(5) == 3.0

    def test_jitter_stays_within_band(self):
        policy = RetryPolicy(base_delay=1.0, jitter=0.5)
        for attempt in range(2, 10):
            delay = policy.delay_before(attempt, (123, 4))
            ceiling = min(
                policy.base_delay * policy.backoff_factor ** (attempt - 2),
                policy.max_delay,
            )
            assert ceiling * 0.5 <= delay <= ceiling

    def test_jitter_is_deterministic(self):
        policy = RetryPolicy()
        a = policy.delay_before(3, (42, 7))
        b = policy.delay_before(3, (42, 7))
        assert a == b

    def test_jitter_varies_with_entropy_and_attempt(self):
        policy = RetryPolicy(base_delay=1.0, backoff_factor=1.0)
        draws = {
            policy.delay_before(attempt, entropy)
            for attempt in (2, 3, 4)
            for entropy in ((1,), (2,), (3,))
        }
        assert len(draws) > 1


class TestJitterEntropy:
    def test_falls_back_to_index(self):
        assert jitter_entropy("anything", 5) == (5,)

    def test_uses_seed_sequence_identity(self):
        class Task:
            seed_sequence = np.random.SeedSequence(99, spawn_key=(2, 1))

        assert jitter_entropy(Task(), 0) == (99, 2, 1)

    def test_seeded_tasks_ignore_submission_index(self):
        class Task:
            seed_sequence = np.random.SeedSequence(7)

        assert jitter_entropy(Task(), 3) == jitter_entropy(Task(), 9)


class TestFaultToleranceStats:
    def test_starts_quiet(self):
        stats = FaultToleranceStats()
        assert not stats.eventful
        assert stats.as_dict() == {
            "attempts": 0,
            "retries": 0,
            "timeouts": 0,
            "crashes": 0,
            "pool_rebuilds": 0,
            "downgrades": 0,
            "resumed": 0,
        }

    def test_plain_attempts_are_not_eventful(self):
        stats = FaultToleranceStats(attempts=12)
        assert not stats.eventful

    def test_any_fault_is_eventful(self):
        assert FaultToleranceStats(retries=1).eventful
        assert FaultToleranceStats(resumed=1).eventful

    def test_merge_accumulates(self):
        total = FaultToleranceStats(attempts=2, retries=1)
        total.merge(FaultToleranceStats(attempts=3, crashes=1))
        assert total.attempts == 5
        assert total.retries == 1
        assert total.crashes == 1

    def test_summary_names_only_nonzero_faults(self):
        summary = FaultToleranceStats(attempts=4, timeouts=2).summary()
        assert "attempts=4" in summary
        assert "timeouts=2" in summary
        assert "crashes" not in summary


# Module-level so ProcessBackend can pickle it: fails on the first
# attempt(s) using a state file as the cross-process attempt counter.
def _flaky(args):
    value, state_path, failures = args
    import os

    for attempt in range(10_000):
        marker = f"{state_path}.{value}.{attempt}"
        try:
            os.close(os.open(marker, os.O_CREAT | os.O_EXCL))
        except FileExistsError:
            continue
        if attempt < failures:
            raise TransientTaskError(f"flaky value {value} attempt {attempt}")
        return value * 10


BACKENDS = {
    "serial": lambda: SerialBackend(),
    "thread": lambda: ThreadBackend(3),
    "process": lambda: ProcessBackend(3),
}


@pytest.mark.chaos
@pytest.mark.parametrize("name", list(BACKENDS))
class TestRetryThroughBackends:
    def test_transient_failures_absorbed_in_order(self, name, tmp_path):
        backend = BACKENDS[name]()
        policy = RetryPolicy(max_attempts=3, base_delay=0.001)
        stats = FaultToleranceStats()
        items = [(v, str(tmp_path / "state"), 1 if v == 2 else 0) for v in range(5)]
        results = backend.map(_flaky, items, retry=policy, stats=stats)
        assert results == [0, 10, 20, 30, 40]
        assert stats.attempts == 6
        assert stats.retries == 1

    def test_exhausted_retries_reraise_original(self, name, tmp_path):
        backend = BACKENDS[name]()
        policy = RetryPolicy(max_attempts=2, base_delay=0.001)
        items = [(v, str(tmp_path / "state"), 5) for v in range(2)]
        with pytest.raises(TransientTaskError):
            backend.map(_flaky, items, retry=policy)

    def test_non_retryable_not_retried(self, name, tmp_path):
        backend = BACKENDS[name]()
        policy = RetryPolicy(
            max_attempts=3, base_delay=0.001, retryable=(TaskTimeoutError,)
        )
        items = [(0, str(tmp_path / "state"), 2)]
        with pytest.raises(TransientTaskError):
            backend.map(_flaky, items, retry=policy)
        # Only the single first attempt left a marker.
        assert (tmp_path / "state.0.0").exists()
        assert not (tmp_path / "state.0.1").exists()

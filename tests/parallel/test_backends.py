"""Tests for the execution backends' shared map contract."""

import os

import pytest

from repro.parallel import (
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    in_worker,
    resolve_backend,
)

BACKENDS = {
    "serial": SerialBackend(),
    "thread": ThreadBackend(3),
    "process": ProcessBackend(3),
}


# Module-level so ProcessBackend can pickle them.
def _square(x):
    return x * x


def _fail_on_two(x):
    if x == 2:
        raise RuntimeError("unit 2 exploded")
    return x


def _nested_map(x):
    """Run a nested backend inside a worker; report worker status."""
    inner = ProcessBackend(2).map(_square, [x, x + 1])
    return (in_worker(), inner)


@pytest.mark.parametrize("name", list(BACKENDS))
class TestMapContract:
    def test_results_in_submission_order(self, name):
        backend = BACKENDS[name]
        assert backend.map(_square, list(range(10))) == [
            x * x for x in range(10)
        ]

    def test_empty_items(self, name):
        assert BACKENDS[name].map(_square, []) == []

    def test_single_item(self, name):
        assert BACKENDS[name].map(_square, [6]) == [36]

    def test_on_result_sees_every_indexed_result(self, name):
        seen = {}
        BACKENDS[name].map(
            _square, [3, 4, 5], on_result=lambda i, r: seen.__setitem__(i, r)
        )
        assert seen == {0: 9, 1: 16, 2: 25}

    def test_unit_exception_propagates(self, name):
        with pytest.raises(RuntimeError, match="unit 2 exploded"):
            BACKENDS[name].map(_fail_on_two, [0, 1, 2, 3])

    def test_satisfies_protocol(self, name):
        assert isinstance(BACKENDS[name], ExecutionBackend)


class TestWorkerGuard:
    def test_parent_is_not_a_worker(self):
        assert not in_worker()

    @pytest.mark.slow
    def test_nested_backend_degrades_to_serial_in_worker(self):
        """A backend used inside a process-pool worker must not fork a
        pool-of-pools; it runs the nested map serially instead."""
        results = ProcessBackend(2).map(_nested_map, [1, 5])
        assert results == [(True, [1, 4]), (True, [25, 36])]
        assert not in_worker()  # the parent flag is untouched


class TestResolveBackend:
    def test_default_is_serial(self):
        assert isinstance(resolve_backend(), SerialBackend)
        assert isinstance(resolve_backend(None), SerialBackend)
        assert isinstance(resolve_backend(1), SerialBackend)

    def test_zero_means_all_cores(self):
        backend = resolve_backend(0)
        expected = os.cpu_count() or 1
        if expected == 1:
            assert isinstance(backend, SerialBackend)
        else:
            assert isinstance(backend, ProcessBackend)
            assert backend.jobs == expected

    def test_kind_selects_pool_flavor(self):
        assert isinstance(resolve_backend(4), ProcessBackend)
        assert isinstance(resolve_backend(4, "process"), ProcessBackend)
        assert isinstance(resolve_backend(4, "thread"), ThreadBackend)

    def test_negative_jobs_rejected(self):
        with pytest.raises(ValueError):
            resolve_backend(-1)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            resolve_backend(2, "fiber")

    def test_pool_backends_reject_zero_jobs(self):
        with pytest.raises(ValueError):
            ThreadBackend(0)
        with pytest.raises(ValueError):
            ProcessBackend(0)

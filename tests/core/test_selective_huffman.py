"""Tests for the selective Huffman baseline (ref [2])."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.blocks import BlockSet
from repro.core.selective_huffman import compress_selective_huffman

from ..conftest import trit_strings


class TestSelectiveHuffman:
    def test_single_dominant_pattern(self):
        blocks = BlockSet.from_string("1100" * 7 + "0110", 4)
        result = compress_selective_huffman(blocks, n_coded=1)
        # 7 coded blocks at 1+1 bits + 1 escape at 1+4 bits = 19 bits.
        assert result.compressed_bits == 7 * 2 + 5
        assert result.escaped_blocks == 1
        assert result.rate == pytest.approx(100 * (32 - 19) / 32)

    def test_all_patterns_coded(self):
        blocks = BlockSet.from_string("1100 0110 1100 0110", 4)
        result = compress_selective_huffman(blocks, n_coded=4)
        assert result.escaped_blocks == 0
        assert result.n_coded == 2  # only two distinct patterns exist

    def test_x_fill_merges_cubes(self):
        """110X and 1100 collapse to one pattern under 0-fill."""
        blocks = BlockSet.from_string("110X 1100", 4)
        result = compress_selective_huffman(blocks, n_coded=1)
        assert result.escaped_blocks == 0

    def test_fill_default_one(self):
        blocks = BlockSet.from_string("110X 1101", 4)
        result = compress_selective_huffman(blocks, n_coded=1, fill_default=1)
        assert result.escaped_blocks == 0

    def test_invalid_arguments(self):
        blocks = BlockSet.from_string("1100", 4)
        with pytest.raises(ValueError):
            compress_selective_huffman(blocks, n_coded=0)
        with pytest.raises(ValueError):
            compress_selective_huffman(blocks, fill_default=2)
        with pytest.raises(ValueError):
            compress_selective_huffman(BlockSet.from_string("", 4))

    def test_more_coded_patterns_never_hurt_much(self):
        """Growing N trades codeword length against escapes; at the
        extremes full coding beats N=1 on diverse data."""
        text = "".join(
            format(i % 13, "04b") + format((i * 7) % 16, "04b")
            for i in range(40)
        )
        blocks = BlockSet.from_string(text, 8)
        small = compress_selective_huffman(blocks, n_coded=1)
        large = compress_selective_huffman(blocks, n_coded=16)
        assert large.compressed_bits <= small.compressed_bits + 8

    @settings(max_examples=40)
    @given(trit_strings(min_size=8, max_size=200), st.integers(1, 12))
    def test_size_accounting(self, text, n_coded):
        """Compressed size decomposes exactly into coded + escaped."""
        blocks = BlockSet.from_string(text, 4)
        result = compress_selective_huffman(blocks, n_coded=n_coded)
        coded_blocks = blocks.n_blocks - result.escaped_blocks
        assert coded_blocks >= 0
        minimum = coded_blocks * 2 + result.escaped_blocks * 5
        assert result.compressed_bits >= minimum

    def test_mv_formulation_subsumes_selective_huffman(self):
        """The paper's EA search space contains selective Huffman:
        fully-specified MVs for the frequent patterns + all-U escape.
        The EA must therefore match or beat it given enough budget."""
        from repro.core.config import CompressionConfig, EAParameters
        from repro.core.optimizer import optimize_mv_set

        text = "1100" * 20 + "0011" * 10 + "011X" * 5
        blocks = BlockSet.from_string(text, 4)
        selective = compress_selective_huffman(blocks, n_coded=2)
        config = CompressionConfig(
            block_length=4,
            n_vectors=6,
            runs=2,
            ea=EAParameters(stagnation_limit=25, max_evaluations=800),
        )
        ea = optimize_mv_set(blocks, config, seed=3)
        assert ea.best_rate >= selective.rate - 1e-9

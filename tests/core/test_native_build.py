"""Build-cache behavior of the native kernel: compile once, degrade well.

The compile machinery's contract (``repro.core.kernels.build``):

* cold start compiles exactly once, every later call warm-loads from
  the on-disk cache with zero subprocesses;
* a corrupt cached ``.so`` is discarded with one warning and rebuilt —
  a bad cache costs a cold start, never a wrong result or a crash;
* no compiler (or a disabled toolchain) surfaces as ONE stderr
  warning and an unavailable ``native`` kernel, while every ``auto``
  path keeps running on the array kernels;
* concurrent builders — ProcessBackend workers racing on a fresh
  cache — compile exactly once via the exclusive-create lock file.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core.covering import cover_masks_batch
from repro.core.kernels import kernel_unavailable_reason
from repro.core.kernels.build import (
    NativeBuildError,
    build_key,
    compile_cached,
    describe_build_file,
    find_compiler,
    load_native_library,
    native_build_dir,
)
from repro.core.kernels.native import NATIVE_C_SOURCE, _SYMBOLS
from repro.parallel import ProcessBackend

NATIVE_UNAVAILABLE = kernel_unavailable_reason("native")
requires_native = pytest.mark.skipif(
    NATIVE_UNAVAILABLE is not None,
    reason=f"native kernel unavailable: {NATIVE_UNAVAILABLE}",
)


@pytest.fixture
def no_native(monkeypatch):
    """Force the no-compiler path for the duration of one test."""
    from repro.core.kernels import native as native_module

    monkeypatch.setenv("REPRO_NATIVE_DISABLE", "1")
    native_module._reset_native_state()
    yield
    native_module._reset_native_state()


def _compile_worker(directory: str) -> bool:
    """Module-level for pickling: one racing build, returns compiled_now."""
    return compile_cached(NATIVE_C_SOURCE, Path(directory))[1]


@requires_native
class TestBuildCache:
    def test_cold_compile_then_warm_load(self, tmp_path):
        path, compiled_now = compile_cached(NATIVE_C_SOURCE, tmp_path)
        assert compiled_now
        assert path.exists() and path.suffix == ".so"
        again, compiled_again = compile_cached(NATIVE_C_SOURCE, tmp_path)
        assert again == path
        assert not compiled_again  # warm: same key, no compiler run

    def test_key_covers_source_compiler_and_flags(self):
        base = build_key("int x;", "cc 1.0", ("-O3",))
        assert build_key("int y;", "cc 1.0", ("-O3",)) != base
        assert build_key("int x;", "cc 2.0", ("-O3",)) != base
        assert build_key("int x;", "cc 1.0", ("-O2",)) != base
        assert build_key("int x;", "cc 1.0", ("-O3",)) == base

    def test_sidecar_describes_the_build(self, tmp_path):
        path, _ = compile_cached(NATIVE_C_SOURCE, tmp_path)
        info = describe_build_file(path)
        assert info["format"] == "repro-native-build"
        assert info["key"] in path.name
        assert "-O3" in info["flags"]
        assert info["source_bytes"] == len(NATIVE_C_SOURCE.encode())
        assert "error" not in info

    def test_describe_survives_corrupt_sidecar(self, tmp_path):
        path, _ = compile_cached(NATIVE_C_SOURCE, tmp_path)
        path.with_suffix(".json").write_text("{not json")
        info = describe_build_file(path)
        assert "unreadable sidecar" in info["error"]
        path.with_suffix(".json").unlink()
        assert describe_build_file(path)["error"] == "no build sidecar"

    def test_corrupt_so_discarded_with_warning_and_rebuilt(self, tmp_path):
        path, _ = compile_cached(NATIVE_C_SOURCE, tmp_path)
        path.write_bytes(b"this is not a shared library")
        warnings = []
        library = load_native_library(
            NATIVE_C_SOURCE, _SYMBOLS, tmp_path, warn=warnings.append
        )
        assert len(warnings) == 1
        assert "discarding corrupt native kernel build" in warnings[0]
        # The rebuilt library is real: the symbols resolve and run.
        assert hasattr(library, "repro_cover")
        rebuilt, compiled_now = compile_cached(NATIVE_C_SOURCE, tmp_path)
        assert rebuilt.exists() and not compiled_now

    def test_missing_symbol_is_a_build_error(self, tmp_path):
        trivial = "int repro_nothing(void) { return 0; }\n"
        with pytest.raises(NativeBuildError, match="lacks symbol"):
            load_native_library(trivial, ("repro_cover",), tmp_path)

    def test_compile_failure_carries_compiler_stderr(self, tmp_path):
        with pytest.raises(NativeBuildError, match="compile failed"):
            compile_cached("this is not C at all!!!", tmp_path)

    def test_stale_lock_is_broken(self, tmp_path, monkeypatch):
        from repro.core.kernels import build as build_module

        path, _ = compile_cached(NATIVE_C_SOURCE, tmp_path)
        path.unlink()  # force a cold rebuild under the same key
        lock = path.with_suffix(".lock")
        lock.touch()  # orphaned lock from a builder killed mid-compile
        monkeypatch.setattr(build_module, "_LOCK_STALE_SECONDS", -1.0)
        rebuilt, compiled_now = compile_cached(NATIVE_C_SOURCE, tmp_path)
        assert compiled_now and rebuilt == path
        assert not lock.exists()

    def test_concurrent_workers_compile_exactly_once(self, tmp_path):
        backend = ProcessBackend(jobs=4)
        compiled = backend.map(_compile_worker, [str(tmp_path)] * 4)
        assert sum(compiled) == 1  # one builder, three warm loads
        libraries = list(tmp_path.glob("*.so"))
        locks = list(tmp_path.glob("*.lock"))
        assert len(libraries) == 1
        assert locks == []  # lock released even by the winning builder


class TestNoCompilerFallback:
    """The pinned no-toolchain path: one warning, every command runs."""

    def test_disable_env_reports_unavailable(self, no_native):
        assert "REPRO_NATIVE_DISABLE" in kernel_unavailable_reason("native")

    def test_missing_compiler_reports_unavailable(self, monkeypatch):
        from repro.core.kernels import native as native_module

        monkeypatch.delenv("REPRO_NATIVE_DISABLE", raising=False)
        monkeypatch.setenv(
            "REPRO_NATIVE_CC", "no-such-compiler-on-this-machine"
        )
        native_module._reset_native_state()
        try:
            reason = kernel_unavailable_reason("native")
            assert "no C compiler found" in reason
        finally:
            native_module._reset_native_state()

    def test_find_compiler_raises_without_any_candidate(self, monkeypatch):
        monkeypatch.delenv("REPRO_NATIVE_DISABLE", raising=False)
        monkeypatch.setenv("REPRO_NATIVE_CC", "no-such-compiler")
        with pytest.raises(NativeBuildError, match="no C compiler found"):
            find_compiler()

    def test_auto_runs_with_one_warning(self, no_native, capsys):
        rng = np.random.default_rng(3)
        block_ones = rng.integers(0, 2**8, 300, dtype=np.uint64)
        block_zeros = (~block_ones) & np.uint64(0xFF)
        counts = np.ones(300, dtype=np.int64)
        mv_ones = np.zeros((4, 6), dtype=np.uint64)
        mv_zeros = np.zeros((4, 6), dtype=np.uint64)
        orders = np.tile(np.arange(6), (4, 1))
        for _ in range(3):  # repeated calls must not repeat the warning
            assignment, frequencies, uncovered = cover_masks_batch(
                block_ones, block_zeros, counts,
                mv_ones, mv_zeros, orders,
                block_length=8, kernel="auto",
            )
            assert (uncovered == 0).all()  # all-U MVs cover everything
        stderr = capsys.readouterr().err
        assert stderr.count("native kernel unavailable") == 1

    def test_native_build_dir_follows_cache_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert native_build_dir() == tmp_path / "native"

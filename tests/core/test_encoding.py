"""Unit tests for codeword assignment and subsumption refinement."""

import pytest

from repro.core.encoding import (
    EncodingStrategy,
    build_encoding_table,
    compressed_size,
    refine_subsumption,
)
from repro.core.matching import MVSet


class TestCompressedSize:
    def test_counts_codeword_and_fills(self):
        mvs = MVSet.from_strings(["1U0U", "0000"])
        # MV0: 3 blocks x (2 + 2 fills); MV1: 1 block x (1 + 0 fills).
        assert compressed_size(mvs, {0: 3, 1: 1}, {0: 2, 1: 1}) == 13

    def test_zero_frequency_ignored(self):
        mvs = MVSet.from_strings(["11", "00"])
        assert compressed_size(mvs, {0: 0, 1: 2}, {1: 1}) == 2


class TestHuffmanTable:
    def test_zero_frequency_mv_gets_no_codeword(self):
        mvs = MVSet.from_strings(["11", "00", "UU"])
        table = build_encoding_table(mvs, {0: 5, 1: 3, 2: 0})
        assert 2 not in table.codewords
        assert set(table.codewords) == {0, 1}

    def test_prefix_code_valid(self):
        mvs = MVSet.from_strings(["11", "00", "1U", "UU"])
        table = build_encoding_table(mvs, {0: 9, 1: 5, 2: 2, 3: 1})
        table.prefix_code()  # raises if not prefix-free

    def test_single_used_mv_gets_one_bit(self):
        mvs = MVSet.from_strings(["UU"])
        table = build_encoding_table(mvs, {0: 10})
        assert table.codewords[0] in ("0", "1")
        assert table.total_bits == 10 * (1 + 2)

    def test_empty_frequencies(self):
        mvs = MVSet.from_strings(["11"])
        table = build_encoding_table(mvs, {})
        assert table.total_bits == 0
        assert table.codewords == {}


class TestFixedTable:
    def test_fixed_codewords_used_verbatim(self):
        mvs = MVSet.from_strings(["11", "00"])
        table = build_encoding_table(
            mvs,
            {0: 4, 1: 2},
            EncodingStrategy.FIXED,
            fixed_codewords={0: "0", 1: "10"},
        )
        assert table.codewords == {0: "0", 1: "10"}
        assert table.total_bits == 4 * 1 + 2 * 2

    def test_fixed_requires_codewords(self):
        mvs = MVSet.from_strings(["11"])
        with pytest.raises(ValueError):
            build_encoding_table(mvs, {0: 1}, EncodingStrategy.FIXED)

    def test_fixed_missing_codeword_rejected(self):
        mvs = MVSet.from_strings(["11", "00"])
        with pytest.raises(ValueError):
            build_encoding_table(
                mvs, {0: 1, 1: 1}, EncodingStrategy.FIXED, fixed_codewords={0: "0"}
            )


class TestSubsumptionRefinement:
    def test_paper_section_3_3_example(self):
        """The exact example from the paper: v1=111U/5, v2=1110/3,
        v3=0000/2.  Plain Huffman: 20 bits; merging v2 into v1: 18."""
        mvs = MVSet.from_strings(["111U", "1110", "0000"])
        frequencies = {0: 5, 1: 3, 2: 2}

        plain = build_encoding_table(mvs, frequencies, EncodingStrategy.HUFFMAN)
        assert plain.total_bits == 20

        refined = build_encoding_table(
            mvs, frequencies, EncodingStrategy.HUFFMAN_SUBSUME
        )
        assert refined.total_bits == 18
        assert refined.redirect == {1: 0}
        assert refined.frequencies == {0: 8, 2: 2}

    def test_refinement_returns_redirect_chain_resolved(self):
        # 11UU subsumes 111U subsumes 1111: chained merges must resolve
        # to the final representative.
        mvs = MVSet.from_strings(["11UU", "111U", "1111"])
        frequencies, redirect = refine_subsumption(
            mvs, {0: 50, 1: 30, 2: 20}
        )
        for source, target in redirect.items():
            assert target not in redirect, "redirect must be fully resolved"
            assert frequencies.get(source, 0) == 0 or source not in frequencies

    def test_no_merge_when_not_beneficial(self):
        # Two unrelated MVs: no subsumption, nothing to merge.
        mvs = MVSet.from_strings(["1111", "0000"])
        frequencies, redirect = refine_subsumption(mvs, {0: 5, 1: 5})
        assert redirect == {}
        assert frequencies == {0: 5, 1: 5}

    def test_refined_never_worse_than_plain(self):
        mvs = MVSet.from_strings(["1UUU", "10UU", "100U", "1000", "0000"])
        frequencies = {0: 10, 1: 8, 2: 6, 3: 4, 4: 2}
        plain = build_encoding_table(mvs, frequencies, EncodingStrategy.HUFFMAN)
        refined = build_encoding_table(
            mvs, frequencies, EncodingStrategy.HUFFMAN_SUBSUME
        )
        assert refined.total_bits <= plain.total_bits

    def test_table_accessors(self):
        mvs = MVSet.from_strings(["111U", "1110", "0000"])
        table = build_encoding_table(
            mvs, {0: 5, 1: 3, 2: 2}, EncodingStrategy.HUFFMAN_SUBSUME
        )
        assert table.final_mv(1) == 0
        assert table.final_mv(0) == 0
        assert table.codeword_for(1) == table.codewords[0]

"""Unit tests for configuration dataclasses."""

import pytest

from repro.core.config import CompressionConfig, EAParameters
from repro.core.encoding import EncodingStrategy


class TestEAParameters:
    def test_paper_defaults(self):
        """Section 4: S=10, C=5, crossover 30%, mutation 30%, inversion
        10%, all-U MV included, 500 stagnant generations."""
        params = EAParameters()
        assert params.population_size == 10
        assert params.children_per_generation == 5
        assert params.crossover_probability == 0.30
        assert params.mutation_probability == 0.30
        assert params.inversion_probability == 0.10
        assert params.stagnation_limit == 500
        assert params.include_all_u
        assert not params.seed_nine_c

    def test_copy_probability_is_remainder(self):
        params = EAParameters()
        assert params.copy_probability == pytest.approx(0.30)

    def test_copy_probability_clamped_at_zero(self):
        params = EAParameters(
            crossover_probability=0.5,
            mutation_probability=0.3,
            inversion_probability=0.2,
        )
        assert params.copy_probability == 0.0

    def test_probabilities_over_one_rejected(self):
        with pytest.raises(ValueError):
            EAParameters(crossover_probability=0.9, mutation_probability=0.2)

    def test_negative_probability_rejected(self):
        with pytest.raises(ValueError):
            EAParameters(mutation_probability=-0.1)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            EAParameters(population_size=0)
        with pytest.raises(ValueError):
            EAParameters(children_per_generation=0)
        with pytest.raises(ValueError):
            EAParameters(stagnation_limit=0)

    def test_with_updates(self):
        params = EAParameters().with_updates(stagnation_limit=50)
        assert params.stagnation_limit == 50
        assert params.population_size == 10


class TestCompressionConfig:
    def test_paper_defaults(self):
        """Table 1 'EA' column: K=12, L=64, Huffman coding, 5 runs."""
        config = CompressionConfig()
        assert config.block_length == 12
        assert config.n_vectors == 64
        assert config.strategy is EncodingStrategy.HUFFMAN
        assert config.runs == 5

    def test_genome_length(self):
        assert CompressionConfig(block_length=8, n_vectors=9).genome_length == 72

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            CompressionConfig(block_length=0)
        with pytest.raises(ValueError):
            CompressionConfig(n_vectors=0)
        with pytest.raises(ValueError):
            CompressionConfig(fill_default=2)
        with pytest.raises(ValueError):
            CompressionConfig(runs=0)

    def test_with_updates(self):
        config = CompressionConfig().with_updates(block_length=8, n_vectors=9)
        assert (config.block_length, config.n_vectors) == (8, 9)
        assert config.runs == 5

"""On-disk MV-cache persistence: roundtrips and the failure contract.

The asymmetric contract under test: a valid persisted cache warms the
next run (pure wall-clock win, byte-identical rates), while *any*
defective file — truncated, corrupt, wrong version, wrong table,
wrong kernel — is discarded with a warning and costs only a cold
start.  Persistence can never poison a result.
"""

import json
import warnings

import numpy as np
import pytest

from repro.core.blocks import BlockSet
from repro.core.cache import (
    CACHE_VERSION,
    POLICY_CHOICES,
    block_table_digest,
    cache_file_path,
    describe_cache_file,
    load_mv_cache,
    save_mv_cache,
)
from repro.core.fitness import BatchCompressionRateFitness, MVMatchCache
from repro.tuning.profile import TuningProfile

DIGEST = "a" * 64
OTHER_DIGEST = "b" * 64


def column(value, width=3):
    data = np.zeros(width, dtype=np.uint8)
    data[0] = value
    return data


def filled_cache(policy="lru", capacity=8, entries=5, int_keys=True):
    cache = MVMatchCache(capacity, policy=policy)
    for value in range(entries):
        key = value if int_keys else value.to_bytes(9, "little")
        cache.put(key, column(value))
    return cache


def collect_warnings(calls):
    return calls.append


class TestRoundtrip:
    @pytest.mark.parametrize("policy", POLICY_CHOICES)
    @pytest.mark.parametrize("int_keys", (True, False), ids=("int", "bytes"))
    def test_save_load_per_policy_and_key_kind(
        self, tmp_path, policy, int_keys
    ):
        cache = filled_cache(policy=policy, int_keys=int_keys)
        path = save_mv_cache(cache, DIGEST, "bitpack", 8, directory=tmp_path)
        assert path is not None and path.is_file()
        assert path.name == f"{'a' * 16}-bitpack-K8-v{CACHE_VERSION}.npz"
        fresh = MVMatchCache(8, policy=policy)
        warned = []
        loaded = load_mv_cache(
            fresh, DIGEST, "bitpack", 8, column_width=3,
            directory=tmp_path, warn=collect_warnings(warned),
        )
        assert warned == []
        assert loaded == len(cache) == fresh.warm_loaded
        assert fresh.hits == fresh.misses == fresh.evictions == 0
        for value in range(5):
            key = value if int_keys else value.to_bytes(9, "little")
            assert fresh.get(key).tolist() == column(value).tolist()

    def test_empty_cache_saves_nothing(self, tmp_path):
        assert (
            save_mv_cache(MVMatchCache(4), DIGEST, "gemm", 8, directory=tmp_path)
            is None
        )
        assert list(tmp_path.iterdir()) == []

    def test_load_into_smaller_cache_keeps_hottest(self, tmp_path):
        cache = filled_cache(capacity=8, entries=6)
        for _ in range(3):
            assert cache.get(1) is not None
            assert cache.get(4) is not None
        save_mv_cache(cache, DIGEST, "gemm", 8, directory=tmp_path)
        small = MVMatchCache(2)
        warned = []
        load_mv_cache(
            small, DIGEST, "gemm", 8, column_width=3,
            directory=tmp_path, warn=collect_warnings(warned),
        )
        assert warned == []
        assert len(small) == 2
        assert small.get(1) is not None
        assert small.get(4) is not None

    def test_missing_file_is_silent_cold_start(self, tmp_path):
        warned = []
        assert (
            load_mv_cache(
                MVMatchCache(4), DIGEST, "gemm", 8, column_width=3,
                directory=tmp_path, warn=collect_warnings(warned),
            )
            == 0
        )
        assert warned == []

    def test_concurrent_writers_last_rename_wins(self, tmp_path):
        """Two savers of one key race harmlessly: each write publishes
        a complete file, the last one is what a later load observes."""
        first = filled_cache(entries=3)
        second = filled_cache(entries=5)
        path1 = save_mv_cache(first, DIGEST, "gemm", 8, directory=tmp_path)
        loaded_between = MVMatchCache(8)
        assert (
            load_mv_cache(
                loaded_between, DIGEST, "gemm", 8, column_width=3,
                directory=tmp_path,
            )
            == 3
        )
        path2 = save_mv_cache(second, DIGEST, "gemm", 8, directory=tmp_path)
        assert path1 == path2
        final = MVMatchCache(8)
        warned = []
        assert (
            load_mv_cache(
                final, DIGEST, "gemm", 8, column_width=3,
                directory=tmp_path, warn=collect_warnings(warned),
            )
            == 5
        )
        assert warned == []


class TestFailureContract:
    """Every defect: one warning, zero loaded entries, cache untouched."""

    def expect_reject(self, tmp_path, reason_fragment, **load_overrides):
        cache = MVMatchCache(8)
        warned = []
        load_arguments = dict(
            digest=DIGEST, kernel="gemm", block_length=8, column_width=3,
            directory=tmp_path, warn=collect_warnings(warned),
        )
        load_arguments.update(load_overrides)
        loaded = load_mv_cache(cache, **load_arguments)
        assert loaded == 0
        assert len(cache) == 0 and cache.warm_loaded == 0
        assert len(warned) == 1 and "ignoring persisted MV cache" in warned[0]
        assert reason_fragment in warned[0]

    def test_truncated_file(self, tmp_path):
        path = save_mv_cache(
            filled_cache(), DIGEST, "gemm", 8, directory=tmp_path
        )
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        self.expect_reject(tmp_path, "unreadable")

    def test_garbage_file(self, tmp_path):
        cache_file_path(DIGEST, "gemm", 8, tmp_path).parent.mkdir(
            parents=True, exist_ok=True
        )
        cache_file_path(DIGEST, "gemm", 8, tmp_path).write_bytes(
            b"not an npz archive"
        )
        self.expect_reject(tmp_path, "unreadable")

    def test_version_mismatch(self, tmp_path, monkeypatch):
        import repro.core.cache.persist as persist_module

        monkeypatch.setattr(persist_module, "CACHE_VERSION", 99)
        stale = save_mv_cache(
            filled_cache(), DIGEST, "gemm", 8, directory=tmp_path
        )
        monkeypatch.undo()
        # The v99 file sits where the v1 name would resolve.
        stale.rename(cache_file_path(DIGEST, "gemm", 8, tmp_path))
        self.expect_reject(tmp_path, "format version")

    def test_digest_mismatch(self, tmp_path):
        """A file renamed onto another table's key is caught by the
        full digest embedded in its metadata."""
        written = save_mv_cache(
            filled_cache(), DIGEST, "gemm", 8, directory=tmp_path
        )
        written.rename(cache_file_path(OTHER_DIGEST, "gemm", 8, tmp_path))
        self.expect_reject(tmp_path, "digest mismatch", digest=OTHER_DIGEST)

    def test_kernel_mismatch_in_renamed_file(self, tmp_path):
        written = save_mv_cache(
            filled_cache(), DIGEST, "gemm", 8, directory=tmp_path
        )
        written.rename(cache_file_path(DIGEST, "bitpack", 8, tmp_path))
        self.expect_reject(tmp_path, "kernel mismatch", kernel="bitpack")

    def test_column_width_mismatch(self, tmp_path):
        save_mv_cache(filled_cache(), DIGEST, "gemm", 8, directory=tmp_path)
        self.expect_reject(tmp_path, "column width", column_width=7)

    def test_foreign_npz(self, tmp_path):
        path = cache_file_path(DIGEST, "gemm", 8, tmp_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        np.savez(path, meta=np.asarray(json.dumps({"format": "other"})),
                 columns=np.zeros((1, 3), dtype=np.uint8))
        self.expect_reject(tmp_path, "not a repro MV cache file")

    def test_describe_cache_file_reports_corruption(self, tmp_path):
        path = save_mv_cache(
            filled_cache(), DIGEST, "gemm", 8, directory=tmp_path
        )
        info = describe_cache_file(path)
        assert info["format"] == "repro-mv-cache"
        assert info["entries"] == 5
        assert info["policy"] == "lru"
        path.write_bytes(b"garbage")
        assert "error" in describe_cache_file(path)


def small_blocks(seed=0, n_bits=2400):
    rng = np.random.default_rng(seed)
    return BlockSet.from_trit_array(
        rng.integers(0, 3, n_bits).astype(np.int8), 8
    )


ENGAGED = TuningProfile(
    mv_dedup_min_genomes=1, mv_dedup_min_table=1, mv_dedup_min_distinct=1
)


class TestFitnessIntegration:
    """The fitness-level warm path: persist after a run, warm the next."""

    def make_fitness(self, blocks, tmp_path, **overrides):
        arguments = dict(
            n_vectors=5, block_length=8, kernel="gemm", tuning=ENGAGED,
            mv_cache_persist=True, mv_cache_dir=tmp_path,
        )
        arguments.update(overrides)
        return BatchCompressionRateFitness(blocks, **arguments)

    def test_cold_persist_warm_reload_identical_rates(self, tmp_path):
        rng = np.random.default_rng(17)
        blocks = small_blocks()
        genomes = rng.integers(0, 3, size=(24, 5 * 8), dtype=np.int8)
        cold = self.make_fitness(blocks, tmp_path)
        cold_rates = cold.evaluate_batch(genomes)
        assert cold.mv_cache_stats.warm_loaded == 0
        assert cold.persist_mv_cache() is not None

        warm = self.make_fitness(blocks, tmp_path)
        assert warm.mv_cache_stats.warm_loaded > 0
        warm_rates = warm.evaluate_batch(genomes)
        assert (warm_rates == cold_rates).all()
        assert warm.mv_cache_stats.misses == 0  # fully served from disk

    def test_corrupt_file_warns_and_prices_cold(self, tmp_path):
        rng = np.random.default_rng(17)
        blocks = small_blocks()
        genomes = rng.integers(0, 3, size=(24, 5 * 8), dtype=np.int8)
        cold = self.make_fitness(blocks, tmp_path)
        cold_rates = cold.evaluate_batch(genomes)
        path = cold.persist_mv_cache()
        path.write_bytes(path.read_bytes()[:40])
        with pytest.warns(UserWarning, match="ignoring persisted MV cache"):
            recovered = self.make_fitness(blocks, tmp_path)
        assert recovered.mv_cache_stats.warm_loaded == 0
        assert (recovered.evaluate_batch(genomes) == cold_rates).all()

    def test_other_table_never_cross_warms(self, tmp_path):
        cold = self.make_fitness(small_blocks(seed=1), tmp_path)
        cold.evaluate_batch(
            np.random.default_rng(0).integers(
                0, 3, size=(24, 5 * 8), dtype=np.int8
            )
        )
        assert cold.persist_mv_cache() is not None
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # wrong table must be *silent*
            other = self.make_fitness(small_blocks(seed=2), tmp_path)
        assert other.mv_cache_stats.warm_loaded == 0

    def test_persist_off_writes_nothing(self, tmp_path):
        fitness = self.make_fitness(blocks := small_blocks(), tmp_path,
                                    mv_cache_persist=False)
        fitness.evaluate_batch(
            np.random.default_rng(0).integers(
                0, 3, size=(24, 5 * 8), dtype=np.int8
            )
        )
        assert fitness.persist_mv_cache() is None
        assert list(tmp_path.iterdir()) == []
        assert blocks is fitness.blocks

    def test_warm_load_respects_smaller_capacity(self, tmp_path):
        rng = np.random.default_rng(17)
        blocks = small_blocks()
        genomes = rng.integers(0, 3, size=(24, 5 * 8), dtype=np.int8)
        big = self.make_fitness(blocks, tmp_path)
        rates = big.evaluate_batch(genomes)
        saved = len(big.mv_cache)
        assert big.persist_mv_cache() is not None
        small = self.make_fitness(blocks, tmp_path, mv_cache_size=5)
        assert small.mv_cache_stats.warm_loaded == 5 < saved
        assert (small.evaluate_batch(genomes) == rates).all()

    def test_digest_is_table_sensitive(self):
        assert block_table_digest(small_blocks(seed=1)) != block_table_digest(
            small_blocks(seed=2)
        )
        assert block_table_digest(small_blocks(seed=1)) == block_table_digest(
            small_blocks(seed=1)
        )

"""Tests for the multiple-scan-chain extension (paper future work)."""

import pytest

from repro.core.config import CompressionConfig, EAParameters
from repro.core.multi_scan import compress_multi_scan, split_into_chains
from repro.testdata.test_set import TestSet
from repro.testdata.synthetic import SyntheticSpec, synthetic_test_set


def fast_config(k=4, l=6) -> CompressionConfig:
    return CompressionConfig(
        block_length=k,
        n_vectors=l,
        runs=1,
        ea=EAParameters(stagnation_limit=8, max_evaluations=200),
    )


@pytest.fixture(scope="module")
def test_set():
    return synthetic_test_set(
        SyntheticSpec(
            "chains", n_patterns=40, pattern_bits=32, care_density=0.4, seed=2
        )
    )


class TestSplitIntoChains:
    def test_balanced_split(self):
        ts = TestSet.from_strings("t", ["01X10", "11XX0"])
        chains = split_into_chains(ts, 2)
        assert [c.n_inputs for c in chains] == [3, 2]
        assert chains[0].pattern_string(0) == "01X"
        assert chains[1].pattern_string(0) == "10"

    def test_single_chain_is_identity(self):
        ts = TestSet.from_strings("t", ["0101"])
        chains = split_into_chains(ts, 1)
        assert len(chains) == 1
        assert chains[0].to_string() == ts.to_string()

    def test_total_bits_preserved(self, test_set):
        chains = split_into_chains(test_set, 5)
        assert sum(c.total_bits for c in chains) == test_set.total_bits

    def test_too_many_chains_rejected(self):
        ts = TestSet.from_strings("t", ["01"])
        with pytest.raises(ValueError):
            split_into_chains(ts, 3)

    def test_zero_chains_rejected(self):
        ts = TestSet.from_strings("t", ["01"])
        with pytest.raises(ValueError):
            split_into_chains(ts, 0)


class TestCompressMultiScan:
    def test_shared_mode(self, test_set):
        result = compress_multi_scan(
            test_set, 4, config=fast_config(), mode="shared", seed=1
        )
        assert result.mode == "shared"
        assert len(result.chains) == 4
        assert result.original_bits == test_set.total_bits

    def test_independent_mode(self, test_set):
        result = compress_multi_scan(
            test_set, 2, config=fast_config(), mode="independent", seed=1
        )
        assert result.mode == "independent"
        assert len(result.chains) == 2

    def test_aggregate_rate_formula(self, test_set):
        result = compress_multi_scan(
            test_set, 2, config=fast_config(), mode="shared", seed=1
        )
        expected = (
            100.0
            * (result.original_bits - result.compressed_bits)
            / result.original_bits
        )
        assert result.rate == pytest.approx(expected)

    def test_invalid_mode_rejected(self, test_set):
        with pytest.raises(ValueError):
            compress_multi_scan(test_set, 2, mode="broadcast")

    def test_single_chain_matches_plain_flow(self, test_set):
        """One chain = the paper's single-scan setting."""
        result = compress_multi_scan(
            test_set, 1, config=fast_config(), mode="shared", seed=3
        )
        assert len(result.chains) == 1
        assert result.chains[0].original_bits == test_set.total_bits

"""Unit tests for the trit alphabet."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.trits import (
    DC,
    ONE,
    ZERO,
    format_trits,
    parse_trits,
    random_trits,
    trits_to_array,
)


class TestParse:
    def test_basic(self):
        assert parse_trits("01X") == (ZERO, ONE, DC)

    def test_u_and_x_and_dash_equivalent(self):
        assert parse_trits("XUx u-") == (DC,) * 5

    def test_grouping_ignored(self):
        assert parse_trits("000 111") == (0, 0, 0, 1, 1, 1)

    def test_invalid_character(self):
        with pytest.raises(ValueError):
            parse_trits("012")

    def test_empty(self):
        assert parse_trits("") == ()


class TestFormat:
    def test_default_uses_u(self):
        assert format_trits((0, 1, 2)) == "01U"

    def test_x_style(self):
        assert format_trits((0, 1, 2), unspecified="X") == "01X"

    def test_invalid_unspecified_char(self):
        with pytest.raises(ValueError):
            format_trits((0,), unspecified="?")

    def test_invalid_trit_value(self):
        with pytest.raises(ValueError):
            format_trits((3,))

    @given(st.text(alphabet="01X", max_size=60))
    def test_roundtrip(self, text):
        assert format_trits(parse_trits(text), unspecified="X") == text


class TestArrayHelpers:
    def test_trits_to_array_dtype(self):
        array = trits_to_array((0, 1, 2))
        assert array.dtype == np.int8

    def test_trits_to_array_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            trits_to_array((0, 3))

    def test_trits_to_array_rejects_2d(self):
        with pytest.raises(ValueError):
            trits_to_array(np.zeros((2, 2), dtype=np.int8))

    def test_random_trits_respects_probabilities(self):
        rng = np.random.default_rng(7)
        trits = random_trits(5000, rng, probabilities=(0.0, 0.0, 1.0))
        assert (trits == DC).all()

    def test_random_trits_distribution(self):
        rng = np.random.default_rng(7)
        trits = random_trits(30_000, rng, probabilities=(0.5, 0.25, 0.25))
        zero_fraction = (trits == ZERO).mean()
        assert 0.45 < zero_fraction < 0.55

    def test_random_trits_rejects_bad_weights(self):
        rng = np.random.default_rng(7)
        with pytest.raises(ValueError):
            random_trits(10, rng, probabilities=(1.0, 1.0))

    def test_random_trits_negative_length(self):
        rng = np.random.default_rng(7)
        with pytest.raises(ValueError):
            random_trits(-1, rng)

"""Property and parity tests for the batched fitness engine.

Three layers of guarantees:

1. ``cover_masks_batch`` row-for-row agrees with the scalar
   ``cover_masks`` kernel;
2. ``BatchCompressionRateFitness`` prices every genome exactly like
   the end-to-end compressor (and like the single-genome wrapper),
   including uncoverable genomes → ``INVALID_FITNESS``;
3. the refactored ``EvolutionaryEngine`` reproduces recorded
   pre-refactor results seed for seed, with and without the memo
   cache.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.blocks import BlockSet
from repro.core.config import CompressionConfig, EAParameters
from repro.core.covering import cover, cover_masks, cover_masks_batch
from repro.core.compressor import compress_blocks
from repro.core.fitness import (
    INVALID_FITNESS,
    BatchCompressionRateFitness,
    CompressionRateFitness,
)
from repro.core.matching import MVSet
from repro.core.trits import DC
from repro.ea.engine import EvolutionaryEngine
from repro.testdata.synthetic import SyntheticSpec, synthetic_test_set

from ..conftest import random_block_set


def random_genome_batch(
    rng: np.random.Generator, n_genomes: int, genome_length: int
) -> np.ndarray:
    return rng.integers(0, 3, size=(n_genomes, genome_length), dtype=np.int8)


class TestCoverMasksBatch:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32))
    def test_rows_match_scalar_kernel(self, seed):
        rng = np.random.default_rng(seed)
        n_distinct = int(rng.integers(1, 50))
        n_vectors = int(rng.integers(1, 16))
        n_genomes = int(rng.integers(1, 10))
        width = int(rng.integers(1, 14))

        def random_masks(count):
            ones = rng.integers(0, 1 << width, count, dtype=np.uint64)
            zeros = rng.integers(0, 1 << width, count, dtype=np.uint64) & ~ones
            return ones, zeros

        block_ones, block_zeros = random_masks(n_distinct)
        counts = rng.integers(1, 9, n_distinct).astype(np.int64)
        mv_ones = np.empty((n_genomes, n_vectors), dtype=np.uint64)
        mv_zeros = np.empty((n_genomes, n_vectors), dtype=np.uint64)
        orders = np.empty((n_genomes, n_vectors), dtype=np.int64)
        for row in range(n_genomes):
            mv_ones[row], mv_zeros[row] = random_masks(n_vectors)
            orders[row] = rng.permutation(n_vectors)

        assignment, frequencies, uncovered = cover_masks_batch(
            block_ones, block_zeros, counts, mv_ones, mv_zeros, orders
        )
        for row in range(n_genomes):
            ref_assignment, ref_frequencies, ref_uncovered = cover_masks(
                block_ones, block_zeros, counts,
                mv_ones[row], mv_zeros[row], orders[row],
            )
            assert uncovered[row] == ref_uncovered
            if ref_uncovered == 0:
                assert (assignment[row] == ref_assignment).all()
                assert (frequencies[row] == ref_frequencies).all()
            else:  # early-exit rows carry no assignment/frequency data
                assert (assignment[row] == -1).all()
                assert (frequencies[row] == 0).all()

    def test_empty_batch_and_empty_blocks(self):
        empty_u64 = np.empty(0, dtype=np.uint64)
        assignment, frequencies, uncovered = cover_masks_batch(
            empty_u64, empty_u64, np.empty(0, dtype=np.int64),
            np.zeros((3, 4), dtype=np.uint64),
            np.zeros((3, 4), dtype=np.uint64),
            np.tile(np.arange(4), (3, 1)),
        )
        assert assignment.shape == (3, 0)
        assert (frequencies == 0).all()
        assert (uncovered == 0).all()


class TestBatchFitnessAgainstCompressor:
    """The batched path must price exactly what compress_blocks emits."""

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32))
    def test_batch_rates_match_compressor(self, seed):
        rng = np.random.default_rng(seed)
        block_length = int(rng.integers(1, 9))
        n_vectors = int(rng.integers(1, 9))
        n_genomes = int(rng.integers(1, 13))
        blocks = random_block_set(
            rng, n_bits=int(rng.integers(1, 300)), block_length=block_length
        )
        fitness = BatchCompressionRateFitness(
            blocks, n_vectors=n_vectors, block_length=block_length
        )
        genomes = random_genome_batch(rng, n_genomes, n_vectors * block_length)
        rates = fitness.evaluate_batch(genomes)
        assert fitness.evaluations == n_genomes
        for row in range(n_genomes):
            mv_set = MVSet.from_genome(genomes[row], block_length)
            if cover(blocks, mv_set).uncovered:
                assert rates[row] == INVALID_FITNESS
            else:
                assert rates[row] == pytest.approx(
                    compress_blocks(blocks, mv_set).rate
                )

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32))
    def test_scalar_wrapper_is_batch_of_one(self, seed):
        rng = np.random.default_rng(seed)
        blocks = random_block_set(rng, n_bits=120, block_length=6)
        batch = BatchCompressionRateFitness(blocks, n_vectors=5, block_length=6)
        scalar = CompressionRateFitness(blocks, n_vectors=5, block_length=6)
        genomes = random_genome_batch(rng, 8, 5 * 6)
        rates = batch.evaluate_batch(genomes)
        for row in range(genomes.shape[0]):
            assert scalar(genomes[row]) == rates[row]

    def test_all_u_genomes_are_always_coverable(self):
        blocks = BlockSet.from_string("101 010 111", 3)
        fitness = BatchCompressionRateFitness(blocks, n_vectors=2, block_length=3)
        genomes = np.full((4, 6), DC, dtype=np.int8)
        rates = fitness.evaluate_batch(genomes)
        assert (rates > INVALID_FITNESS).all()
        assert np.unique(rates).size == 1

    def test_mixed_valid_and_invalid_rows(self):
        blocks = BlockSet.from_string("111 000", 3)
        fitness = BatchCompressionRateFitness(blocks, n_vectors=1, block_length=3)
        genomes = np.asarray(
            [[1, 1, 1], [DC, DC, DC]], dtype=np.int8
        )  # "111" misses block "000"; all-U covers everything
        rates = fitness.evaluate_batch(genomes)
        assert rates[0] == INVALID_FITNESS
        assert rates[1] > INVALID_FITNESS

    def test_one_dimensional_genome_accepted(self):
        blocks = BlockSet.from_string("111 000", 3)
        fitness = BatchCompressionRateFitness(blocks, n_vectors=1, block_length=3)
        rates = fitness.evaluate_batch(np.full(3, DC, dtype=np.int8))
        assert rates.shape == (1,)

    def test_bad_batch_shape_rejected(self):
        blocks = BlockSet.from_string("111 000", 3)
        fitness = BatchCompressionRateFitness(blocks, n_vectors=2, block_length=3)
        with pytest.raises(ValueError):
            fitness.evaluate_batch(np.zeros((2, 5), dtype=np.int8))


class TestEngineParity:
    """Recorded pre-refactor engine results, reproduced bit for bit.

    The expected tuples were captured by running the per-child
    (pre-batching) engine on this exact workload; the batched engine
    must match them seed for seed, cache or no cache.
    """

    EXPECTED = {11: (50.3125, 60, 310), 99: (53.28125, 60, 310)}

    @staticmethod
    def _blocks():
        test_set = synthetic_test_set(
            SyntheticSpec(
                "parity", n_patterns=40, pattern_bits=32,
                care_density=0.4, seed=7,
            )
        )
        return test_set.blocks(8)

    @staticmethod
    def _repair(genome: np.ndarray) -> np.ndarray:
        repaired = genome.copy()
        repaired[-8:] = DC
        return repaired

    def _run(self, seed, fitness, cache_size):
        engine = EvolutionaryEngine(
            fitness=fitness,
            genome_length=12 * 8,
            params=EAParameters(stagnation_limit=25, max_generations=60),
            seed=seed,
            repair=self._repair,
            cache_size=cache_size,
        )
        return engine.run()

    @pytest.mark.parametrize("seed", sorted(EXPECTED))
    @pytest.mark.parametrize("cache_size", [0, 8192])
    def test_matches_recorded_pre_refactor_results(self, seed, cache_size):
        blocks = self._blocks()
        fitness = BatchCompressionRateFitness(
            blocks, n_vectors=12, block_length=8
        )
        result = self._run(seed, fitness, cache_size)
        assert (
            result.best_fitness, result.generations, result.evaluations
        ) == self.EXPECTED[seed]

    def test_scalar_callable_engine_agrees_with_batched_engine(self):
        blocks = self._blocks()
        batch_fitness = BatchCompressionRateFitness(
            blocks, n_vectors=12, block_length=8
        )
        single = CompressionRateFitness(blocks, n_vectors=12, block_length=8)

        def scalar_only(genome: np.ndarray) -> float:
            return single._batch.evaluate_batch(genome)[0]

        batched = self._run(11, batch_fitness, cache_size=0)
        scalar = self._run(11, scalar_only, cache_size=0)
        assert batched.best_fitness == scalar.best_fitness
        assert batched.generations == scalar.generations
        assert batched.evaluations == scalar.evaluations
        assert (batched.best_genome == scalar.best_genome).all()

    def test_cache_reports_hits_without_changing_results(self):
        blocks = self._blocks()
        cached = self._run(
            11,
            BatchCompressionRateFitness(blocks, n_vectors=12, block_length=8),
            cache_size=8192,
        )
        uncached = self._run(
            11,
            BatchCompressionRateFitness(blocks, n_vectors=12, block_length=8),
            cache_size=0,
        )
        assert cached.best_fitness == uncached.best_fitness
        assert cached.generations == uncached.generations
        assert cached.evaluations == uncached.evaluations
        assert cached.cache_hits > 0  # copy/reproduce duplicates exist
        assert 0.0 < cached.cache_hit_rate <= 1.0
        assert uncached.cache_hits == 0
        assert uncached.cache_hit_rate == 0.0

    def test_negative_cache_size_rejected(self):
        with pytest.raises(ValueError):
            EvolutionaryEngine(
                fitness=lambda genome: 0.0, genome_length=4, cache_size=-1
            )


class TestMaskWidthValidation:
    """The K <= 64 cap is gone: wide blocks pack into multi-word masks."""

    def test_config_accepts_wide_block_length(self):
        assert CompressionConfig(block_length=96).block_length == 96

    def test_config_rejects_nonpositive_block_length(self):
        with pytest.raises(ValueError):
            CompressionConfig(block_length=0)

    def test_config_rejects_unknown_kernel(self):
        with pytest.raises(ValueError, match="unknown covering kernel"):
            CompressionConfig(kernel="nonsense")

    def test_blockset_accepts_wide_block_length(self):
        blocks = BlockSet.from_string("01", 65)
        assert blocks.word_count == 2

    def test_batch_fitness_rejects_nonpositive_n_vectors(self):
        blocks = BlockSet.from_string("111", 3)
        with pytest.raises(ValueError):
            BatchCompressionRateFitness(blocks, n_vectors=0, block_length=3)

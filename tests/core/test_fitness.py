"""Unit and property tests for the EA fitness evaluation fast path."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.blocks import BlockSet
from repro.core.compressor import compress_blocks
from repro.core.encoding import EncodingStrategy
from repro.core.fitness import INVALID_FITNESS, CompressionRateFitness
from repro.core.matching import MVSet

from ..conftest import mv_strings, trit_strings


class TestFitnessBasics:
    def test_docstring_example(self):
        blocks = BlockSet.from_string("111 000 111 111", 3)
        fitness = CompressionRateFitness(blocks, n_vectors=2, block_length=3)
        genome = MVSet.from_strings(["111", "UUU"]).to_genome()
        # 3 blocks x '0' (1 bit) + 1 block x ('1' + 3 fills) = 7 bits.
        assert fitness(genome) == pytest.approx(100 * (12 - 7) / 12)

    def test_uncoverable_gets_invalid_fitness(self):
        blocks = BlockSet.from_string("010", 3)
        fitness = CompressionRateFitness(blocks, n_vectors=1, block_length=3)
        genome = MVSet.from_strings(["111"]).to_genome()
        assert fitness(genome) == INVALID_FITNESS

    def test_invalid_fitness_below_any_valid_rate(self):
        """Even a horribly expanding encoding beats 'impossible'."""
        blocks = BlockSet.from_string("01", 2)
        fitness = CompressionRateFitness(blocks, n_vectors=1, block_length=2)
        expanding = fitness(MVSet.from_strings(["UU"]).to_genome())
        assert expanding > INVALID_FITNESS

    def test_evaluation_counter(self):
        blocks = BlockSet.from_string("111", 3)
        fitness = CompressionRateFitness(blocks, n_vectors=1, block_length=3)
        genome = MVSet.from_strings(["UUU"]).to_genome()
        fitness(genome)
        fitness(genome)
        assert fitness.evaluations == 2

    def test_block_length_mismatch_rejected(self):
        blocks = BlockSet.from_string("0101", 4)
        with pytest.raises(ValueError):
            CompressionRateFitness(blocks, n_vectors=2, block_length=3)

    def test_empty_test_set_rejected(self):
        blocks = BlockSet.from_string("", 3)
        with pytest.raises(ValueError):
            CompressionRateFitness(blocks, n_vectors=1, block_length=3)

    def test_fixed_strategy_rejected(self):
        blocks = BlockSet.from_string("111", 3)
        with pytest.raises(ValueError):
            CompressionRateFitness(
                blocks, n_vectors=1, block_length=3, strategy=EncodingStrategy.FIXED
            )


class TestFitnessMatchesCompressor:
    """The fast path must price exactly what compress_blocks emits."""

    @settings(max_examples=40)
    @given(
        trit_strings(min_size=1, max_size=160),
        st.lists(mv_strings(4), min_size=1, max_size=6),
    )
    def test_huffman_agreement(self, text, mv_texts):
        blocks = BlockSet.from_string(text, 4)
        mv_set = MVSet.from_strings(mv_texts + ["UUUU"])
        fitness = CompressionRateFitness(
            blocks, n_vectors=len(mv_set), block_length=4
        )
        predicted = fitness(mv_set.to_genome())
        actual = compress_blocks(blocks, mv_set).rate
        assert predicted == pytest.approx(actual)

    @settings(max_examples=25)
    @given(
        trit_strings(min_size=1, max_size=120),
        st.lists(mv_strings(4), min_size=1, max_size=5),
    )
    def test_subsumption_agreement(self, text, mv_texts):
        blocks = BlockSet.from_string(text, 4)
        mv_set = MVSet.from_strings(mv_texts + ["UUUU"])
        fitness = CompressionRateFitness(
            blocks,
            n_vectors=len(mv_set),
            block_length=4,
            strategy=EncodingStrategy.HUFFMAN_SUBSUME,
        )
        predicted = fitness(mv_set.to_genome())
        actual = compress_blocks(
            blocks, mv_set, EncodingStrategy.HUFFMAN_SUBSUME
        ).rate
        assert predicted == pytest.approx(actual)

    def test_evaluate_mv_set_convenience(self):
        blocks = BlockSet.from_string("111 000", 3)
        fitness = CompressionRateFitness(blocks, n_vectors=2, block_length=3)
        mv_set = MVSet.from_strings(["111", "000"])
        assert fitness.evaluate_mv_set(mv_set) == pytest.approx(
            fitness(mv_set.to_genome())
        )


class TestGenomeMasks:
    def test_masks_match_mv_objects(self):
        blocks = BlockSet.from_string("1111", 4)
        fitness = CompressionRateFitness(blocks, n_vectors=3, block_length=4)
        mv_set = MVSet.from_strings(["1U0U", "0000", "UUUU"])
        ones, zeros, n_unspecified = fitness.genome_masks(mv_set.to_genome())
        for index, mv in enumerate(mv_set):
            assert int(ones[index]) == mv.ones_mask
            assert int(zeros[index]) == mv.zeros_mask
            assert int(n_unspecified[index]) == mv.n_unspecified

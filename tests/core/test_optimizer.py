"""Integration tests for the EA-driven MV optimizer."""

import pytest

from repro.core.blocks import BlockSet
from repro.core.compressor import compress_blocks
from repro.core.config import CompressionConfig, EAParameters
from repro.core.decompressor import verify_roundtrip
from repro.core.nine_c import compress_nine_c
from repro.core.optimizer import EAMVOptimizer, optimize_mv_set


def small_config(**ea_overrides) -> CompressionConfig:
    """A fast configuration for tests: tiny budget, 2 runs."""
    ea = EAParameters(stagnation_limit=20, max_evaluations=400, **ea_overrides)
    return CompressionConfig(block_length=4, n_vectors=6, runs=2, ea=ea)


STRUCTURED_TEXT = ("1100" * 8 + "11XX" * 4 + "0000" * 6 + "10X0" * 3) * 2


class TestOptimizer:
    def test_deterministic_under_seed(self):
        blocks = BlockSet.from_string(STRUCTURED_TEXT, 4)
        first = optimize_mv_set(blocks, small_config(), seed=7)
        second = optimize_mv_set(blocks, small_config(), seed=7)
        assert first.mean_rate == second.mean_rate
        assert first.best_rate == second.best_rate
        assert first.best_mv_set == second.best_mv_set

    def test_different_seeds_explore_differently(self):
        blocks = BlockSet.from_string(STRUCTURED_TEXT, 4)
        rates = {
            optimize_mv_set(blocks, small_config(), seed=s).best_rate
            for s in range(4)
        }
        assert len(rates) >= 1  # sanity; rates may coincide at optimum

    def test_all_u_pinned_in_every_run(self):
        blocks = BlockSet.from_string(STRUCTURED_TEXT, 4)
        result = optimize_mv_set(blocks, small_config(), seed=3)
        for run in result.runs:
            assert run.mv_set.has_all_unspecified

    def test_best_mv_set_compresses_to_best_rate(self):
        blocks = BlockSet.from_string(STRUCTURED_TEXT, 4)
        result = optimize_mv_set(blocks, small_config(), seed=11)
        compressed = compress_blocks(blocks, result.best_mv_set)
        assert compressed.rate == pytest.approx(result.best_rate)
        verify_roundtrip(compressed)

    def test_mean_between_min_and_max(self):
        blocks = BlockSet.from_string(STRUCTURED_TEXT, 4)
        result = optimize_mv_set(blocks, small_config(), seed=5)
        rates = [run.rate for run in result.runs]
        assert min(rates) <= result.mean_rate <= max(rates)
        assert result.best_rate == max(rates)

    def test_total_evaluations_accumulates(self):
        blocks = BlockSet.from_string(STRUCTURED_TEXT, 4)
        result = optimize_mv_set(blocks, small_config(), seed=5)
        assert result.total_evaluations == sum(
            run.ea_result.evaluations for run in result.runs
        )
        assert result.total_evaluations > 0

    def test_compress_best_roundtrips(self):
        blocks = BlockSet.from_string(STRUCTURED_TEXT, 4)
        optimizer = EAMVOptimizer(small_config(), seed=2)
        compressed = optimizer.compress_best(blocks)
        verify_roundtrip(compressed)


class TestOptimizerSeeding:
    def test_nine_c_seeding_requires_even_k(self):
        config = CompressionConfig(
            block_length=5,
            n_vectors=9,
            runs=1,
            ea=EAParameters(seed_nine_c=True, stagnation_limit=5),
        )
        blocks = BlockSet.from_string("10101" * 4, 5)
        with pytest.raises(ValueError):
            EAMVOptimizer(config, seed=1).optimize(blocks)

    def test_nine_c_seeding_requires_nine_vectors(self):
        config = CompressionConfig(
            block_length=4,
            n_vectors=4,
            runs=1,
            ea=EAParameters(seed_nine_c=True, stagnation_limit=5),
        )
        blocks = BlockSet.from_string("1010" * 4, 4)
        with pytest.raises(ValueError):
            EAMVOptimizer(config, seed=1).optimize(blocks)

    def test_nine_c_seeding_never_loses_to_nine_c(self):
        """With the 9C MVs in the initial population and truncation
        survival, the EA result can never be worse than 9C+HC."""
        text = ("00000000" * 6 + "11111111" * 3 + "0101XXXX" * 4) * 2
        blocks = BlockSet.from_string(text, 8)
        config = CompressionConfig(
            block_length=8,
            n_vectors=9,
            runs=1,
            ea=EAParameters(
                seed_nine_c=True, stagnation_limit=10, max_evaluations=150
            ),
        )
        result = EAMVOptimizer(config, seed=0).optimize(blocks)
        nine_c_hc = compress_nine_c(blocks, use_huffman=True)
        assert result.best_rate >= nine_c_hc.rate - 1e-9


class TestOptimizerImprovement:
    def test_ea_beats_all_u_baseline(self):
        """On structured data the EA must do far better than the
        trivial all-U encoding (which expands the test set)."""
        blocks = BlockSet.from_string(STRUCTURED_TEXT, 4)
        result = optimize_mv_set(blocks, small_config(), seed=9)
        all_u_rate = 100.0 * (
            blocks.original_bits - blocks.n_blocks * 5
        ) / blocks.original_bits
        assert result.best_rate > all_u_rate + 10

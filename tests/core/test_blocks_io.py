"""Out-of-core block tables: on-disk format, streaming build, memmaps.

Three contracts:

* :func:`save_block_table`/:func:`load_block_table` roundtrip a
  :class:`BlockSet` through a directory of ``.npy`` files, loading as
  memory-maps that behave identically to in-RAM arrays everywhere
  downstream (the ``prepare()`` contract).
* :class:`StreamingBlockTableBuilder` fed arbitrary chunk sizes
  produces a table *array-identical* to ``BlockSet.from_trit_array``
  over the concatenated stream — same canonical distinct-row order,
  same counts, same sequence — so out-of-core construction can never
  move a rate.
* A memmapped table prices end-to-end through the kernels with
  resident memory bounded well below the table's on-disk size (the
  subprocess RSS test at the bottom).
"""

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest

from repro.core.blocks import BlockSet
from repro.core.blocks_io import (
    BLOCK_TABLE_VERSION,
    StreamingBlockTableBuilder,
    load_block_table,
    save_block_table,
)
from repro.core.fitness import BatchCompressionRateFitness
from repro.core.kernels import get_kernel
from repro.tuning.profile import TuningProfile


def random_trits(rng, n):
    return rng.integers(0, 3, n).astype(np.int8)


def assert_tables_identical(ours: BlockSet, reference: BlockSet):
    assert ours.block_length == reference.block_length
    assert ours.original_bits == reference.original_bits
    for name in ("ones", "zeros", "counts", "sequence"):
        mine = np.asarray(getattr(ours, name))
        theirs = np.asarray(getattr(reference, name))
        assert mine.dtype == theirs.dtype, name
        assert (mine == theirs).all(), name


class TestSaveLoadRoundtrip:
    def test_roundtrip_memmap_and_ram(self, tmp_path):
        rng = np.random.default_rng(0)
        blocks = BlockSet.from_trit_array(random_trits(rng, 4000), 8)
        save_block_table(blocks, tmp_path / "table")
        for mmap in (True, False):
            loaded = load_block_table(tmp_path / "table", mmap=mmap)
            assert_tables_identical(loaded, blocks)
            assert isinstance(np.asarray(loaded.ones), np.ndarray)
            if mmap:
                assert isinstance(loaded.ones, np.memmap)

    def test_wide_blocks_roundtrip(self, tmp_path):
        rng = np.random.default_rng(3)
        blocks = BlockSet.from_trit_array(random_trits(rng, 70 * 40), 70)
        save_block_table(blocks, tmp_path / "wide")
        assert_tables_identical(
            load_block_table(tmp_path / "wide"), blocks
        )

    def test_rejects_missing_directory(self, tmp_path):
        with pytest.raises((OSError, ValueError)):
            load_block_table(tmp_path / "absent")

    def test_rejects_foreign_format(self, tmp_path):
        rng = np.random.default_rng(0)
        blocks = BlockSet.from_trit_array(random_trits(rng, 800), 8)
        target = tmp_path / "table"
        save_block_table(blocks, target)
        meta = json.loads((target / "meta.json").read_text())
        meta["format"] = "something-else"
        (target / "meta.json").write_text(json.dumps(meta))
        with pytest.raises(ValueError, match="format"):
            load_block_table(target)

    def test_rejects_version_mismatch(self, tmp_path):
        rng = np.random.default_rng(0)
        blocks = BlockSet.from_trit_array(random_trits(rng, 800), 8)
        target = tmp_path / "table"
        save_block_table(blocks, target)
        meta = json.loads((target / "meta.json").read_text())
        meta["version"] = BLOCK_TABLE_VERSION + 1
        (target / "meta.json").write_text(json.dumps(meta))
        with pytest.raises(ValueError, match="version"):
            load_block_table(target)


class TestStreamingBuilder:
    @pytest.mark.parametrize("block_length", (8, 11, 70))
    @pytest.mark.parametrize("chunk", (1, 7, 997, 100_000))
    def test_identical_to_from_trit_array(self, tmp_path, block_length, chunk):
        rng = np.random.default_rng(11)
        trits = random_trits(rng, 40_003)  # odd: exercises tail padding
        reference = BlockSet.from_trit_array(trits, block_length)
        builder = StreamingBlockTableBuilder(block_length, tmp_path / "t")
        for start in range(0, trits.size, chunk):
            builder.feed(trits[start : start + chunk])
        assert_tables_identical(builder.finalize(), reference)

    def test_low_entropy_stream_dedups(self, tmp_path):
        trits = np.tile(
            np.array([0, 1, 2, 1, 0, 2, 0, 1], dtype=np.int8), 500
        )
        builder = StreamingBlockTableBuilder(8, tmp_path / "t")
        builder.feed(trits)
        table = builder.finalize()
        assert table.n_distinct == 1
        assert np.asarray(table.counts)[0] == 500

    def test_builder_output_loads_back(self, tmp_path):
        rng = np.random.default_rng(5)
        trits = random_trits(rng, 8_000)
        builder = StreamingBlockTableBuilder(8, tmp_path / "t")
        builder.feed(trits)
        built = builder.finalize()
        assert_tables_identical(
            load_block_table(tmp_path / "t"),
            BlockSet.from_trit_array(trits, 8),
        )
        assert_tables_identical(built, BlockSet.from_trit_array(trits, 8))


ENGAGED = TuningProfile(
    mv_dedup_min_genomes=1, mv_dedup_min_table=1, mv_dedup_min_distinct=1
)


class TestMemmapPricingParity:
    """np.memmap tables behave identically through prepare() and the
    kernels — the bitpack lane build spills to a disk-backed buffer
    but the lanes themselves are bit-identical."""

    @pytest.mark.parametrize("kernel_name", ("gemm", "bitpack", "scalar"))
    def test_prepare_and_price_from_memmap(self, tmp_path, kernel_name):
        rng = np.random.default_rng(29)
        trits = random_trits(rng, 24_000)
        ram = BlockSet.from_trit_array(trits, 8)
        save_block_table(ram, tmp_path / "table")
        mapped = load_block_table(tmp_path / "table")
        genomes = rng.integers(0, 3, size=(16, 5 * 8), dtype=np.int8)
        rates = {}
        for label, blocks in (("ram", ram), ("memmap", mapped)):
            fitness = BatchCompressionRateFitness(
                blocks, n_vectors=5, block_length=8,
                kernel=kernel_name, tuning=ENGAGED,
            )
            rates[label] = fitness.evaluate_batch(genomes)
        assert (rates["ram"] == rates["memmap"]).all()

    def test_bitpack_lanes_spill_to_disk_for_memmap_input(self, tmp_path):
        rng = np.random.default_rng(31)
        ram = BlockSet.from_trit_array(random_trits(rng, 24_000), 8)
        save_block_table(ram, tmp_path / "table")
        mapped = load_block_table(tmp_path / "table")
        kernel = get_kernel("bitpack")
        from_ram = kernel.prepare(ram)
        from_map = kernel.prepare(mapped)
        assert not isinstance(from_ram.block_lanes, np.memmap)
        assert isinstance(from_map.block_lanes, np.memmap)
        assert (
            np.asarray(from_ram.block_lanes)
            == np.asarray(from_map.block_lanes)
        ).all()


RSS_SCRIPT = textwrap.dedent(
    """
    import sys
    import numpy as np
    from repro.core.blocks_io import load_block_table
    from repro.core.fitness import BatchCompressionRateFitness
    from repro.tuning.profile import TuningProfile

    blocks = load_block_table(sys.argv[1])
    # mv_cache_size stays small: the cache store preallocates
    # capacity x ceil(D/8) bytes, which at D=1e5 would otherwise
    # dominate the very footprint this test bounds.
    fitness = BatchCompressionRateFitness(
        blocks, n_vectors=4, block_length=64, kernel="bitpack",
        mv_cache_size=64,
        tuning=TuningProfile(
            mv_dedup_min_genomes=1, mv_dedup_min_table=1,
            mv_dedup_min_distinct=1,
        ),
    )
    rng = np.random.default_rng(0)
    genomes = rng.integers(0, 3, size=(8, 4 * 64), dtype=np.int8)
    rates = fitness.evaluate_batch(genomes)
    assert np.isfinite(rates).all()
    # VmHWM (peak resident set, KiB) — unlike ru_maxrss it resets on
    # exec, so it measures THIS process, not the forking parent.
    with open("/proc/self/status") as status:
        line = next(line for line in status if line.startswith("VmHWM"))
    print(int(line.split()[1]) * 1024)
    """
)


@pytest.mark.slow
def test_large_table_prices_with_bounded_rss(tmp_path):
    """A D≈10⁵ table whose on-disk size dwarfs the pricing working set
    is priced end-to-end by a subprocess whose peak RSS stays well
    below the table size — the memory-mapped arrays stream from disk
    instead of being resident."""
    rng = np.random.default_rng(42)
    n_distinct, block_length = 100_000, 64
    # Synthesize the distinct table directly (cheap, no canonical-sort
    # requirement for pricing) and give it a long block sequence — the
    # bulk of the on-disk bytes.
    ones = rng.integers(0, 2**63, size=(n_distinct, 1), dtype=np.uint64)
    zeros = (~ones) & rng.integers(
        0, 2**63, size=(n_distinct, 1), dtype=np.uint64
    )
    n_sequence = 40_000_000
    sequence = rng.integers(0, n_distinct, size=n_sequence, dtype=np.int32)
    blocks = BlockSet(
        block_length=block_length,
        original_bits=n_sequence * block_length,
        ones=ones,
        zeros=zeros,
        counts=np.bincount(sequence, minlength=n_distinct).astype(np.int64),
        sequence=sequence,
    )
    table_dir = tmp_path / "big"
    save_block_table(blocks, table_dir)
    table_bytes = sum(
        file.stat().st_size for file in table_dir.iterdir()
    )
    assert table_bytes > 150 * 2**20  # the sequence alone is ~152 MiB
    source_root = Path(__file__).resolve().parents[2] / "src"
    environment = dict(os.environ)
    environment["PYTHONPATH"] = os.pathsep.join(
        part
        for part in (str(source_root), environment.get("PYTHONPATH"))
        if part
    )
    result = subprocess.run(
        [sys.executable, "-c", RSS_SCRIPT, str(table_dir)],
        capture_output=True, text=True, check=True, env=environment,
    )
    peak_rss = int(result.stdout.strip())
    # Well below the table: the child's working set (~90 MiB, mostly
    # interpreter + numpy + the D-bounded pricing arrays) is flat in
    # the sequence length; an in-RAM load would add the full table.
    assert peak_rss < table_bytes * 0.75

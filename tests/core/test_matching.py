"""Unit and property tests for matching vectors and MV sets."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.blocks import pack_trits
from repro.core.matching import MatchingVector, MVSet
from repro.core.trits import parse_trits

from ..conftest import mv_strings, trit_strings


def brute_force_match(mv_text: str, block_text: str) -> bool:
    """The paper's definition, position by position."""
    for mv_char, block_char in zip(mv_text, block_text):
        if mv_char == "1" and block_char == "0":
            return False
        if mv_char == "0" and block_char == "1":
            return False
    return True


class TestMatchingVector:
    def test_paper_example_v5_matches(self):
        # v(5) = 111UUU matches 111100 and 111011 (paper Section 1).
        v5 = MatchingVector.from_string("111UUU")
        assert v5.matches_trits(parse_trits("111100"))
        assert v5.matches_trits(parse_trits("111011"))

    def test_paper_example_v4_exact(self):
        v4 = MatchingVector.from_string("111000")
        assert v4.matches_trits(parse_trits("111000"))
        assert not v4.matches_trits(parse_trits("111100"))

    def test_x_in_block_matches_specified_mv(self):
        mv = MatchingVector.from_string("10")
        assert mv.matches_trits(parse_trits("XX"))

    def test_n_unspecified_and_positions(self):
        mv = MatchingVector.from_string("1U0U")
        assert mv.n_unspecified == 2
        assert mv.u_positions == (1, 3)

    def test_all_unspecified_constructor(self):
        mv = MatchingVector.all_unspecified(5)
        assert mv.is_all_unspecified
        assert mv.n_unspecified == 5

    def test_length_mismatch_rejected(self):
        mv = MatchingVector.from_string("10")
        with pytest.raises(ValueError):
            mv.matches_trits(parse_trits("101"))

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            MatchingVector(())

    def test_str(self):
        assert str(MatchingVector.from_string("1U0")) == "1U0"

    def test_fill_bits_take_block_values(self):
        mv = MatchingVector.from_string("1UU0")
        fills = mv.fill_bits(parse_trits("11X0"))
        assert fills == [1, 0]  # X position gets the default 0

    def test_fill_bits_default_one(self):
        mv = MatchingVector.from_string("UU")
        assert mv.fill_bits(parse_trits("XX"), fill_default=1) == [1, 1]

    def test_fill_bits_invalid_default(self):
        mv = MatchingVector.from_string("U")
        with pytest.raises(ValueError):
            mv.fill_bits(parse_trits("X"), fill_default=2)


class TestSubsumption:
    def test_paper_example(self):
        v1 = MatchingVector.from_string("111U")
        v2 = MatchingVector.from_string("1110")
        assert v1.subsumes(v2)
        assert not v2.subsumes(v1)

    def test_self_subsumption(self):
        mv = MatchingVector.from_string("1U0")
        assert mv.subsumes(mv)

    def test_all_u_subsumes_everything(self):
        all_u = MatchingVector.all_unspecified(4)
        assert all_u.subsumes(MatchingVector.from_string("1010"))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            MatchingVector.from_string("1U").subsumes(
                MatchingVector.from_string("1U0")
            )

    @given(mv_strings(6), mv_strings(6), trit_strings(min_size=6, max_size=6))
    def test_subsumption_implies_match_containment(self, a_text, b_text, block):
        """If a subsumes b, every block matched by b is matched by a."""
        a = MatchingVector.from_string(a_text)
        b = MatchingVector.from_string(b_text)
        if a.subsumes(b) and b.matches_trits(parse_trits(block)):
            assert a.matches_trits(parse_trits(block))


class TestMatchingProperties:
    @given(mv_strings(8), trit_strings(min_size=8, max_size=8))
    def test_mask_match_equals_definition(self, mv_text, block_text):
        mv = MatchingVector.from_string(mv_text)
        ones, zeros = pack_trits(parse_trits(block_text))
        assert mv.matches_masks(ones, zeros) == brute_force_match(mv_text, block_text)

    @given(mv_strings(8), st.lists(trit_strings(8, 8), min_size=1, max_size=20))
    def test_vectorized_match_equals_scalar(self, mv_text, block_texts):
        mv = MatchingVector.from_string(mv_text)
        masks = [pack_trits(parse_trits(t)) for t in block_texts]
        ones = np.asarray([m[0] for m in masks], dtype=np.uint64)
        zeros = np.asarray([m[1] for m in masks], dtype=np.uint64)
        vectorized = mv.matches_array(ones, zeros)
        scalar = [mv.matches_masks(o, z) for o, z in masks]
        assert vectorized.tolist() == scalar


class TestMVSet:
    def test_covering_order_sorts_by_nu(self):
        mvs = MVSet.from_strings(["UUU", "000", "1U1"])
        assert mvs.covering_order() == [1, 2, 0]

    def test_covering_order_stable_for_ties(self):
        mvs = MVSet.from_strings(["111", "000", "UUU"])
        assert mvs.covering_order() == [0, 1, 2]

    def test_genome_roundtrip(self):
        mvs = MVSet.from_strings(["1U0", "0X1"])
        assert MVSet.from_genome(mvs.to_genome(), 3) == mvs

    def test_from_genome_rejects_bad_length(self):
        with pytest.raises(ValueError):
            MVSet.from_genome(np.zeros(7, dtype=np.int8), 3)

    def test_mixed_lengths_rejected(self):
        with pytest.raises(ValueError):
            MVSet.from_strings(["10", "100"])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MVSet([])

    def test_with_all_unspecified_noop_when_present(self):
        mvs = MVSet.from_strings(["11", "UU"])
        assert mvs.with_all_unspecified() is mvs

    def test_with_all_unspecified_replaces_last(self):
        mvs = MVSet.from_strings(["11", "00"]).with_all_unspecified()
        assert str(mvs[1]) == "UU"
        assert str(mvs[0]) == "11"

    def test_iteration_and_indexing(self):
        mvs = MVSet.from_strings(["10", "01"])
        assert [str(mv) for mv in mvs] == ["10", "01"]
        assert str(mvs[1]) == "01"
        assert len(mvs) == 2

"""Failure-injection tests: corrupted streams, hostile inputs, limits.

A production decompressor must fail loudly on malformed data, not
emit garbage test vectors; these tests pin that behaviour across the
stack.
"""

import pytest

from repro.coding.bitstream import BitReader, BitWriter
from repro.core.blocks import BlockSet
from repro.core.compressor import CompressedTestSet, compress_blocks
from repro.core.covering import UncoverableError
from repro.core.decompressor import decompress
from repro.core.matching import MVSet


def compressed_fixture() -> CompressedTestSet:
    blocks = BlockSet.from_string("111 000 111 0X1 XXX", 3)
    return compress_blocks(
        blocks, MVSet.from_strings(["111", "000", "UUU"])
    )


class TestCorruptedStreams:
    def test_truncated_payload_raises(self):
        good = compressed_fixture()
        truncated = CompressedTestSet(
            blocks=good.blocks,
            mv_set=good.mv_set,
            table=good.table,
            covering=good.covering,
            payload=good.payload,
            payload_bits=good.payload_bits - 1,
            fill_default=good.fill_default,
        )
        with pytest.raises((EOFError, ValueError)):
            decompress(truncated)

    def test_extra_trailing_bits_raise(self):
        good = compressed_fixture()
        writer = BitWriter()
        reader = BitReader(good.payload, good.payload_bits)
        writer.write_bits(reader.read_bits(good.payload_bits))
        writer.write_bits([0] * 8)  # junk tail
        padded = CompressedTestSet(
            blocks=good.blocks,
            mv_set=good.mv_set,
            table=good.table,
            covering=good.covering,
            payload=writer.getvalue(),
            payload_bits=writer.bit_length,
            fill_default=good.fill_default,
        )
        with pytest.raises(ValueError, match="trailing"):
            decompress(padded)

    def test_bitflip_never_passes_silently_or_decodes_consistently(self):
        """Flipping one payload bit either raises or changes decoded
        data in a way verify_roundtrip would catch on specified bits.

        (With a complete prefix code a flip can decode to *different*
        valid vectors — then the roundtrip oracle must catch it; with
        an incomplete tree the walk may dead-end — then decoding
        raises.)"""
        good = compressed_fixture()
        original = decompress(good).bits
        detected = 0
        for bit_index in range(good.payload_bits):
            payload = bytearray(good.payload)
            payload[bit_index // 8] ^= 0x80 >> (bit_index % 8)
            corrupted = CompressedTestSet(
                blocks=good.blocks,
                mv_set=good.mv_set,
                table=good.table,
                covering=good.covering,
                payload=bytes(payload),
                payload_bits=good.payload_bits,
                fill_default=good.fill_default,
            )
            try:
                if decompress(corrupted).bits != original:
                    detected += 1
            except (ValueError, EOFError, KeyError, AssertionError):
                detected += 1
        assert detected == good.payload_bits  # every flip has an effect


class TestHostileInputs:
    def test_uncoverable_block_set(self):
        blocks = BlockSet.from_string("010101", 6)
        with pytest.raises(UncoverableError):
            compress_blocks(blocks, MVSet.from_strings(["111111"]))

    def test_mismatched_fixed_codewords(self):
        from repro.core.encoding import EncodingStrategy

        blocks = BlockSet.from_string("111", 3)
        with pytest.raises(ValueError):
            compress_blocks(
                blocks,
                MVSet.from_strings(["111"]),
                EncodingStrategy.FIXED,
                fixed_codewords={},
            )

    def test_non_prefix_fixed_codewords_rejected(self):
        from repro.coding.prefix import PrefixViolationError
        from repro.core.encoding import EncodingStrategy, build_encoding_table

        mvs = MVSet.from_strings(["11", "00"])
        table = build_encoding_table(
            mvs,
            {0: 1, 1: 1},
            EncodingStrategy.FIXED,
            fixed_codewords={0: "1", 1: "10"},
        )
        with pytest.raises(PrefixViolationError):
            table.prefix_code()

    def test_zero_length_test_set_rejected_by_fitness(self):
        from repro.core.fitness import CompressionRateFitness

        empty = BlockSet.from_string("", 4)
        with pytest.raises(ValueError):
            CompressionRateFitness(empty, n_vectors=2, block_length=4)


class TestSearchLimits:
    def test_podem_zero_budget_aborts_hard_fault(self):
        from repro.atpg.faults import StuckAtFault
        from repro.atpg.podem import podem
        from repro.circuits.generator import random_netlist

        netlist = random_netlist(10, 60, seed=3)
        hard = [
            fault
            for fault in (
                StuckAtFault(net, value)
                for net in netlist.all_nets()
                for value in (0, 1)
            )
        ]
        outcomes = {podem(netlist, f, max_backtracks=0).status for f in hard[:30]}
        # With zero backtracks allowed, nothing is proven untestable.
        assert "untestable" not in outcomes or "aborted" in outcomes

    def test_justify_unsatisfiable_terminates(self):
        from repro.atpg.podem import justify
        from repro.circuits.bench_parser import parse_bench

        netlist = parse_bench(
            "INPUT(a)\nOUTPUT(y)\nn = NOT(a)\ny = AND(a, n)"
        )
        assert justify(netlist, {"y": 1}, max_backtracks=10_000) is None

"""Concurrent-access stress tests for the shared MVMatchCache.

The serve daemon shares one :class:`MVMatchCache` per block table
across a coalescer dispatcher and a pool of compress workers, so the
cache must tolerate concurrent ``fetch``/``insert``/``put`` callers:

* **no lost updates** — every key inserted by any thread is resident
  afterwards (capacity permitting) with exactly the bytes its
  deterministic column function produced;
* **no torn reads** — a ``fetch`` hit always returns the full column
  for its key, never a slot recycled mid-gather (the failure mode of
  the split ``lookup``/``columns_at`` pair);
* **byte parity** — engines sharing a cache from concurrent threads
  price identically to a cold serial engine.
"""

import threading

import numpy as np

import repro.core.fitness as fitness_module
from repro.core.encoding import EncodingStrategy
from repro.core.fitness import BatchCompressionRateFitness, MVMatchCache
from repro.testdata.test_set import TestSet

WIDTH = 8  # packed-column bytes per entry
N_KEYS = 64
N_THREADS = 8
ROUNDS = 40


def column_for(key: int) -> np.ndarray:
    """The deterministic packed column every thread agrees on for a key."""
    rng = np.random.default_rng(key)
    return rng.integers(0, 256, size=WIDTH, dtype=np.uint8)


def hammer(cache: MVMatchCache, seed: int, failures: list) -> None:
    """Fetch-then-insert random key batches, checking every hit's bytes."""
    rng = np.random.default_rng(seed)
    try:
        for _ in range(ROUNDS):
            keys = [int(k) for k in rng.integers(0, N_KEYS, size=6)]
            hit, hit_columns = cache.fetch(keys)
            if hit_columns is not None:
                expected = np.stack(
                    [column_for(k) for k, h in zip(keys, hit) if h]
                )
                if not np.array_equal(hit_columns, expected):
                    failures.append(("torn read", keys, hit.tolist()))
            miss = [k for k, h in zip(keys, hit) if not h]
            if miss:
                cache.insert(miss, np.stack([column_for(k) for k in miss]))
    except Exception as error:  # surfaced by the main thread
        failures.append(("exception", repr(error)))


class TestConcurrentStress:
    def test_no_lost_updates_or_torn_reads(self):
        cache = MVMatchCache(N_KEYS)  # all keys fit: no eviction noise
        failures: list = []
        barrier = threading.Barrier(N_THREADS)

        def worker(seed):
            barrier.wait()
            hammer(cache, seed, failures)

        threads = [
            threading.Thread(target=worker, args=(seed,))
            for seed in range(N_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures, failures[:5]

        # No lost updates: every key any thread inserted is resident
        # with exactly its deterministic column.
        inserted = 0
        for key in range(N_KEYS):
            column = cache.get(key)
            if column is not None:
                inserted += 1
                np.testing.assert_array_equal(column, column_for(key))
        assert inserted > 0
        assert len(cache) == inserted
        # Counter bookkeeping survived the contention.
        assert cache.hits + cache.misses == (
            N_THREADS * ROUNDS * 6 + N_KEYS  # hammer fetches + final gets
        )

    def test_concurrent_insert_same_key_is_harmless(self):
        cache = MVMatchCache(4)
        barrier = threading.Barrier(N_THREADS)
        failures: list = []

        def worker():
            barrier.wait()
            try:
                for _ in range(ROUNDS):
                    cache.insert([1], column_for(1)[None, :])
                    hit, columns = cache.fetch([1])
                    if hit[0] and not np.array_equal(
                        columns[0], column_for(1)
                    ):
                        failures.append("divergent bytes")
            except Exception as error:
                failures.append(repr(error))

        threads = [
            threading.Thread(target=worker) for _ in range(N_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures
        assert len(cache) == 1

    def test_eviction_pressure_under_contention_keeps_bytes_correct(self):
        cache = MVMatchCache(8)  # far smaller than the key space
        failures: list = []
        barrier = threading.Barrier(N_THREADS)

        def worker(seed):
            barrier.wait()
            hammer(cache, seed, failures)

        threads = [
            threading.Thread(target=worker, args=(seed,))
            for seed in range(N_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures, failures[:5]
        assert len(cache) <= 8
        keys, columns = cache.export_state()
        for key, column in zip(keys, columns):
            np.testing.assert_array_equal(column, column_for(key))


class TestSharedEngineParity:
    def test_engines_sharing_a_cache_concurrently_match_serial(
        self, monkeypatch
    ):
        """Two single-caller engines over one shared cache, driven from
        two threads at once — the daemon's exact sharing pattern —
        price byte-identically to a cold serial engine."""
        # Force the dedup/cache path for these small batches (it
        # normally engages only at generation scale).
        monkeypatch.setattr(fitness_module, "_MV_DEDUP_MIN_GENOMES", 1)
        monkeypatch.setattr(fitness_module, "_MV_DEDUP_MIN_TABLE", 1)
        patterns = ["01X10X", "X10011", "110100", "0XX01X"]
        blocks = TestSet.from_strings("stress", patterns).blocks(3)
        rng = np.random.default_rng(11)
        matrices = [
            rng.integers(0, 3, size=(16, 9)).astype(np.int8)
            for _ in range(4)
        ]

        def build(cache):
            return BatchCompressionRateFitness(
                blocks,
                n_vectors=3,
                block_length=3,
                strategy=EncodingStrategy.HUFFMAN,
                kernel="bitpack",
                mv_cache=cache,
            )

        serial = build(MVMatchCache(256))
        expected = [serial.evaluate_batch(m) for m in matrices]

        shared = MVMatchCache(256)
        engines = [build(shared), build(shared)]
        results = [[None, None], [None, None]]
        barrier = threading.Barrier(2)

        def drive(index):
            barrier.wait()
            for round_index, matrix in enumerate(matrices[index::2]):
                results[index][round_index] = engines[index].evaluate_batch(
                    matrix
                )

        threads = [
            threading.Thread(target=drive, args=(i,)) for i in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        np.testing.assert_array_equal(results[0][0], expected[0])
        np.testing.assert_array_equal(results[1][0], expected[1])
        np.testing.assert_array_equal(results[0][1], expected[2])
        np.testing.assert_array_equal(results[1][1], expected[3])
        # Sharing showed up as hits without changing a single byte.
        assert shared.hits + shared.misses > 0

"""Unit and property tests for input-block partitioning and packing."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.blocks import (
    BlockSet,
    int_to_words,
    mask_word_count,
    pack_bits_to_words,
    pack_trits,
    unpack_masks,
    unpack_words_to_bits,
    words_to_int,
)
from repro.core.trits import parse_trits

from ..conftest import trit_strings


class TestPackUnpack:
    def test_pack_known_value(self):
        # "10X": position 0 ('1') is the MSB of a 3-bit mask.
        assert pack_trits(parse_trits("10X")) == (0b100, 0b010)

    def test_pack_all_dc(self):
        assert pack_trits(parse_trits("XXX")) == (0, 0)

    def test_pack_wide_block(self):
        # 96 trits: the cap is gone, masks are arbitrary-precision ints.
        trits = (1,) * 96
        ones, zeros = pack_trits(trits)
        assert ones == (1 << 96) - 1
        assert zeros == 0

    def test_unpack_rejects_overlap(self):
        with pytest.raises(ValueError):
            unpack_masks(0b1, 0b1, 1)

    @given(trit_strings(min_size=1, max_size=200))
    def test_roundtrip(self, text):
        trits = parse_trits(text)
        ones, zeros = pack_trits(trits)
        assert unpack_masks(ones, zeros, len(trits)) == trits


class TestWordHelpers:
    def test_word_counts(self):
        assert mask_word_count(1) == 1
        assert mask_word_count(64) == 1
        assert mask_word_count(65) == 2
        assert mask_word_count(96) == 2
        assert mask_word_count(129) == 3

    def test_word_count_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            mask_word_count(0)

    def test_int_word_roundtrip(self):
        value = (0xDEADBEEF << 80) | 0x12345
        words = int_to_words(value, 3)
        assert words_to_int(words) == value

    @given(st.integers(1, 200), st.integers(0, 2**32))
    def test_pack_unpack_words_roundtrip(self, block_length, seed):
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, size=(5, block_length))
        words = pack_bits_to_words(bits)
        assert words.shape == (5, mask_word_count(block_length))
        recovered = unpack_words_to_bits(words, block_length)
        assert (recovered == bits).all()

    def test_single_word_matches_flat_mask(self):
        # For K <= 64 word 0 must equal the historical flat packing.
        ones, _ = pack_trits(parse_trits("10X1"))
        words = pack_bits_to_words(
            np.asarray([[1, 0, 0, 1]], dtype=np.int8)
        )
        assert words.shape == (1, 1)
        assert int(words[0, 0]) == ones == 0b1001


class TestBlockSetConstruction:
    def test_exact_partition(self):
        blocks = BlockSet.from_string("111000", 3)
        assert blocks.n_blocks == 2
        assert blocks.original_bits == 6
        assert blocks.padded_bits == 6

    def test_padding_with_x(self):
        blocks = BlockSet.from_string("11111", 3)
        assert blocks.n_blocks == 2
        assert blocks.original_bits == 5
        assert blocks.padded_bits == 6
        # The padded tail block is 11X.
        assert blocks.block_string(int(blocks.sequence[1])) == "11X"

    def test_distinct_counting(self):
        blocks = BlockSet.from_string("111 000 111 111", 3)
        assert blocks.n_distinct == 2
        assert sorted(blocks.counts.tolist()) == [1, 3]

    def test_sequence_reconstructs_order(self):
        blocks = BlockSet.from_string("111 000 111", 3)
        rendered = list(blocks.iter_block_strings())
        assert rendered == ["111", "000", "111"]

    def test_x_and_specified_blocks_distinct(self):
        blocks = BlockSet.from_string("11X 110", 3)
        assert blocks.n_distinct == 2

    def test_empty_string(self):
        blocks = BlockSet.from_string("", 4)
        assert blocks.n_blocks == 0
        assert blocks.n_distinct == 0
        assert blocks.care_density() == 0.0

    def test_invalid_block_length(self):
        with pytest.raises(ValueError):
            BlockSet.from_string("01", 0)

    def test_wide_blocks_use_word_arrays(self):
        blocks = BlockSet.from_string("10X" * 33, 66)  # 99 trits, K=66
        assert blocks.word_count == 2
        assert blocks.ones.shape == (blocks.n_distinct, 2)
        assert blocks.ones_words.shape == blocks.zeros_words.shape
        # Round-trip through the trit view stays lossless.
        rendered = "".join(blocks.iter_block_strings())
        assert rendered.startswith("10X" * 22)

    def test_2d_input_rejected(self):
        with pytest.raises(ValueError):
            BlockSet.from_trit_array(np.zeros((2, 3), dtype=np.int8), 3)


class TestBlockSetStats:
    def test_specified_bit_count(self):
        blocks = BlockSet.from_string("11X 0XX", 3)
        assert blocks.specified_bit_count() == 3

    def test_care_density(self):
        blocks = BlockSet.from_string("1X" * 6, 4)
        assert blocks.care_density() == pytest.approx(0.5)

    def test_care_density_counts_padding(self):
        blocks = BlockSet.from_string("11111", 5)
        assert blocks.care_density() == 1.0


class TestBlockSetProperties:
    @given(trit_strings(min_size=1, max_size=240), st.integers(1, 16))
    def test_counts_sum_to_block_count(self, text, block_length):
        blocks = BlockSet.from_string(text, block_length)
        assert blocks.counts.sum() == blocks.n_blocks
        assert blocks.n_blocks == -(-len(parse_trits(text)) // block_length)

    @given(trit_strings(min_size=1, max_size=240), st.integers(1, 16))
    def test_sequence_indexes_distinct_table(self, text, block_length):
        blocks = BlockSet.from_string(text, block_length)
        if blocks.n_blocks:
            assert blocks.sequence.min() >= 0
            assert blocks.sequence.max() < blocks.n_distinct

    @given(trit_strings(min_size=1, max_size=120), st.integers(1, 12))
    def test_blocks_reassemble_to_original(self, text, block_length):
        """Concatenating the blocks reproduces the padded string."""
        trits = parse_trits(text)
        blocks = BlockSet.from_string(text, block_length)
        reassembled = "".join(blocks.iter_block_strings())
        from repro.core.trits import format_trits

        original = format_trits(trits, unspecified="X")
        assert reassembled[: len(original)] == original
        assert set(reassembled[len(original) :]) <= {"X"}

    @given(trit_strings(min_size=1, max_size=120))
    def test_masks_disjoint(self, text):
        blocks = BlockSet.from_string(text, 8)
        assert (blocks.ones & blocks.zeros == 0).all()

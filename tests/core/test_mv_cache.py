"""MV-level match-column caching: dedup, LRU cache, factored parity.

The PR-4 contract: pricing through the unique-MV dedup path — per-MV
match columns from :meth:`CoveringKernel.match_columns`, cached across
generations in :class:`MVMatchCache`, reassembled by
:func:`cover_packed_columns` — is bit-identical to the fused
per-generation kernels under every kernel, every cache size (including
eviction pressure), and every batch composition (100% duplicates
included).  Seeded EA runs therefore cannot drift when the cache is
enabled, resized, or disabled.
"""

from unittest import mock

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.fitness as fitness_module
from repro.core.blocks import BlockSet
from repro.core.config import CompressionConfig, EAParameters
from repro.core.covering import cover_masks
from repro.core.fitness import (
    DEFAULT_MV_CACHE_SIZE,
    BatchCompressionRateFitness,
    MVMatchCache,
)
from repro.core.kernels import (
    cover_from_match_columns,
    cover_packed_columns,
    get_kernel,
    pack_match_columns,
)
from repro.core.optimizer import EAMVOptimizer

KERNEL_NAMES = ("gemm", "bitpack", "scalar")
CACHE_SIZES = (0, 5, DEFAULT_MV_CACHE_SIZE)  # off / eviction pressure / default


@pytest.fixture
def always_dedup(monkeypatch):
    """Force the dedup path for every batch shape (it normally engages
    only on generation-scale batches over non-tiny tables, or large
    tables)."""
    monkeypatch.setattr(fitness_module, "_MV_DEDUP_MIN_GENOMES", 1)
    monkeypatch.setattr(fitness_module, "_MV_DEDUP_MIN_TABLE", 1)


def random_blocks(rng, block_length, n_bits=600):
    care = rng.random(n_bits) < 0.5
    values = rng.random(n_bits) < 0.5
    trits = np.where(care, values.astype(np.int8), np.int8(2))
    return BlockSet.from_trit_array(trits.astype(np.int8), block_length)


class TestMVMatchCache:
    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            MVMatchCache(0)

    def test_get_put_lru_eviction(self):
        cache = MVMatchCache(2)
        one = np.array([1], dtype=np.uint8)
        two = np.array([2], dtype=np.uint8)
        three = np.array([3], dtype=np.uint8)
        cache.put(b"a", one)
        cache.put(b"b", two)
        assert cache.get(b"a").tolist() == [1]  # refreshes "a"
        cache.put(b"c", three)  # evicts the LRU entry: "b"
        assert cache.get(b"b") is None
        assert cache.get(b"a").tolist() == [1]
        assert cache.get(b"c").tolist() == [3]
        assert len(cache) == 2
        assert cache.evictions == 1
        assert cache.hits == 3 and cache.misses == 1

    def test_put_overwrites_in_place(self):
        cache = MVMatchCache(4)
        cache.put(b"k", np.array([9], dtype=np.uint8))
        cache.put(b"k", np.array([7], dtype=np.uint8))
        assert len(cache) == 1
        assert cache.get(b"k").tolist() == [7]

    def test_batch_lookup_insert_roundtrip(self):
        cache = MVMatchCache(8)
        columns = np.arange(12, dtype=np.uint8).reshape(4, 3)
        cache.insert([10, 11, 12, 13], columns)
        slots = cache.lookup([12, 99, 10])
        assert (slots >= 0).tolist() == [True, False, True]
        hits = slots[slots >= 0]
        assert (cache.columns_at(hits) == columns[[2, 0]]).all()
        assert cache.hits == 2 and cache.misses == 1

    def test_bulk_insert_under_eviction_pressure_keeps_newest(self):
        cache = MVMatchCache(2)
        columns = np.arange(10, dtype=np.uint8).reshape(5, 2)
        cache.insert(list(range(5)), columns)
        assert len(cache) == 2
        assert cache.evictions == 3
        # The two surviving keys are the newest, with correct columns.
        assert cache.get(3).tolist() == columns[3].tolist()
        assert cache.get(4).tolist() == columns[4].tolist()
        assert cache.get(0) is None

    def test_rejects_mismatched_column_width(self):
        cache = MVMatchCache(4)
        cache.put(b"a", np.zeros(3, dtype=np.uint8))
        with pytest.raises(ValueError, match="one block table"):
            cache.put(b"b", np.zeros(5, dtype=np.uint8))


class TestFactoredCoverParity:
    """match_columns + cover_packed_columns ≡ the fused kernels."""

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**32),
        st.sampled_from([4, 11, 64, 96]),
    )
    def test_match_columns_agree_with_reference(self, seed, block_length):
        rng = np.random.default_rng(seed)
        blocks = random_blocks(rng, block_length, n_bits=block_length * 40)
        n_vectors = int(rng.integers(1, 20))
        genome = rng.integers(
            0, 3, size=n_vectors * block_length, dtype=np.int8
        )
        fitness = BatchCompressionRateFitness(
            blocks, n_vectors, block_length, mv_cache_size=0
        )
        mv_ones, mv_zeros, _ = fitness.genome_masks_batch(genome)
        per_kernel = {}
        for name in KERNEL_NAMES:
            kernel = get_kernel(name)
            prepared = kernel.prepare(blocks)
            per_kernel[name] = kernel.match_columns(
                prepared, mv_ones[0], mv_zeros[0]
            )
        # Reference: one cover_masks call per standalone MV tells which
        # blocks it matches (assignment >= 0 ⇔ match, single MV).
        for index in range(n_vectors):
            ones = mv_ones[0][index : index + 1]
            zeros = mv_zeros[0][index : index + 1]
            assignment, _, _ = cover_masks(
                blocks.ones,
                blocks.zeros,
                blocks.counts,
                ones,
                zeros,
                np.zeros(1, dtype=np.int64),
            )
            expected = assignment >= 0
            for name in KERNEL_NAMES:
                assert (per_kernel[name][index] == expected).all(), name

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**32),
        st.sampled_from([6, 12, 70]),
    )
    def test_cover_packed_columns_matches_fused_kernel(
        self, seed, block_length
    ):
        rng = np.random.default_rng(seed)
        blocks = random_blocks(rng, block_length, n_bits=block_length * 50)
        n_vectors = int(rng.integers(2, 10))
        n_genomes = int(rng.integers(1, 7))
        genomes = rng.integers(
            0, 3, size=(n_genomes, n_vectors * block_length), dtype=np.int8
        )
        fitness = BatchCompressionRateFitness(
            blocks, n_vectors, block_length, mv_cache_size=0, kernel="scalar"
        )
        mv_ones, mv_zeros, n_unspecified = fitness.genome_masks_batch(genomes)
        orders = np.argsort(n_unspecified, axis=1, kind="stable")
        kernel = get_kernel("bitpack")
        prepared = kernel.prepare(blocks)
        expected = kernel.cover_masks(prepared, mv_ones, mv_zeros, orders)

        flat_ones = mv_ones.reshape(n_genomes * n_vectors, -1)
        flat_zeros = mv_zeros.reshape(n_genomes * n_vectors, -1)
        columns = kernel.match_columns(prepared, flat_ones, flat_zeros)
        mv_index = np.arange(n_genomes * n_vectors).reshape(
            n_genomes, n_vectors
        )
        ordered_mv_index = np.take_along_axis(mv_index, orders, axis=1)
        # At property-test sizes cover_packed_columns auto-picks the
        # unpack+gather strategy; drive the packed L-rank loop directly
        # so both reassembly strategies stay pinned to the kernels.
        from repro.core.kernels.base import _cover_packed_rank_loop

        packed = cover_packed_columns(
            prepared,
            pack_match_columns(columns),
            ordered_mv_index,
            orders,
            want_assignment=True,
        )
        unpacked = cover_from_match_columns(
            prepared, columns, ordered_mv_index, orders, want_assignment=True
        )
        rank_loop = (
            np.full((n_genomes, blocks.n_distinct), -1, dtype=np.int64),
            np.zeros((n_genomes, n_vectors), dtype=np.int64),
            np.zeros(n_genomes, dtype=np.int64),
        )
        _cover_packed_rank_loop(
            prepared,
            pack_match_columns(columns),
            ordered_mv_index,
            orders,
            True,
            None,
            *rank_loop,
        )
        for contender in (packed, unpacked, rank_loop):
            for ours, theirs in zip(contender, expected):
                assert (ours == theirs).all()


class TestDedupFitnessParity:
    """evaluate_batch dedup path ≡ fused path, all kernels and sizes."""

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32))
    def test_generation_scale_batches(self, seed):
        rng = np.random.default_rng(seed)
        blocks = random_blocks(rng, 8)
        # 24 genomes clears the batch-size arm of the engagement
        # heuristic; the table floor is lowered because property-test
        # block sets are far smaller than real tables (hypothesis
        # forbids function-scoped fixtures, hence mock.patch).
        genomes = rng.integers(0, 3, size=(24, 5 * 8), dtype=np.int8)
        reference = None
        patched = mock.patch.object(fitness_module, "_MV_DEDUP_MIN_TABLE", 1)
        for name in KERNEL_NAMES:
            for cache_size in CACHE_SIZES:
                fitness = BatchCompressionRateFitness(
                    blocks,
                    n_vectors=5,
                    block_length=8,
                    kernel=name,
                    mv_cache_size=cache_size,
                )
                with patched:
                    rates = fitness.evaluate_batch(genomes)
                    repriced = fitness.evaluate_batch(genomes)  # warm pass
                assert (rates == repriced).all()
                if reference is None:
                    reference = rates
                assert (rates == reference).all(), (name, cache_size)

    def test_all_copy_generation_dedups_to_parent_rows(self, always_dedup):
        """A 100% duplicate batch prices one genome's worth of MVs."""
        rng = np.random.default_rng(3)
        blocks = random_blocks(rng, 8)
        genome = rng.integers(0, 3, size=5 * 8, dtype=np.int8)
        batch = np.tile(genome, (32, 1))
        fused = BatchCompressionRateFitness(
            blocks, n_vectors=5, block_length=8, mv_cache_size=0
        )
        deduped = BatchCompressionRateFitness(
            blocks, n_vectors=5, block_length=8
        )
        assert (
            deduped.evaluate_batch(batch) == fused.evaluate_batch(batch)
        ).all()
        stats = deduped.mv_cache_stats
        assert stats.rows_total == 32 * 5
        assert stats.rows_unique <= 5  # duplicate MVs inside the genome too
        assert stats.misses == stats.rows_unique
        assert deduped.mv_cache_stats.hit_rate == 0.0  # single cold batch
        deduped.evaluate_batch(batch)
        assert deduped.mv_cache_stats.hits == stats.rows_unique

    def test_eviction_pressure_never_changes_rates(self, always_dedup):
        rng = np.random.default_rng(9)
        blocks = random_blocks(rng, 8)
        fused = BatchCompressionRateFitness(
            blocks, n_vectors=6, block_length=8, mv_cache_size=0
        )
        tiny = BatchCompressionRateFitness(
            blocks, n_vectors=6, block_length=8, mv_cache_size=3
        )
        for _ in range(6):
            genomes = rng.integers(0, 3, size=(7, 6 * 8), dtype=np.int8)
            assert (
                tiny.evaluate_batch(genomes) == fused.evaluate_batch(genomes)
            ).all()
        stats = tiny.mv_cache_stats
        assert stats.size <= 3
        assert stats.evictions > 0

    def test_wide_blocks_use_bytes_keys(self, always_dedup):
        """K > 32 rows dedup through the lexsort + bytes-key path."""
        rng = np.random.default_rng(4)
        blocks = random_blocks(rng, 70, n_bits=70 * 30)
        genomes = rng.integers(0, 3, size=(6, 4 * 70), dtype=np.int8)
        genomes[3:] = genomes[:3]
        fused = BatchCompressionRateFitness(
            blocks, n_vectors=4, block_length=70, mv_cache_size=0
        )
        deduped = BatchCompressionRateFitness(
            blocks, n_vectors=4, block_length=70
        )
        assert (
            deduped.evaluate_batch(genomes) == fused.evaluate_batch(genomes)
        ).all()
        stats = deduped.mv_cache_stats
        assert 0 < stats.rows_unique <= 12  # half the batch was copies

    def test_dedup_disengages_below_thresholds(self):
        """Tiny batches on small tables bypass the cache by design."""
        rng = np.random.default_rng(5)
        blocks = random_blocks(rng, 8)
        fitness = BatchCompressionRateFitness(
            blocks, n_vectors=5, block_length=8
        )
        fitness.evaluate_batch(
            rng.integers(0, 3, size=(2, 5 * 8), dtype=np.int8)
        )
        assert fitness.mv_cache_stats.rows_total == 0


class TestSeededRunParity:
    """Seeded EA runs are byte-identical across cache sizes × kernels."""

    @pytest.mark.parametrize("kernel", KERNEL_NAMES)
    def test_optimizer_results_cache_invariant(self, kernel, always_dedup):
        rng = np.random.default_rng(11)
        blocks = random_blocks(rng, 8)
        results = {}
        for cache_size in CACHE_SIZES:
            config = CompressionConfig(
                block_length=8,
                n_vectors=6,
                runs=2,
                kernel=kernel,
                mv_cache_size=cache_size,
                ea=EAParameters(stagnation_limit=10, max_evaluations=250),
            )
            results[cache_size] = EAMVOptimizer(config, seed=77).optimize(
                blocks
            )
        reference = results[CACHE_SIZES[0]]
        for cache_size in CACHE_SIZES[1:]:
            result = results[cache_size]
            assert result.mean_rate == reference.mean_rate
            assert result.best_rate == reference.best_rate
            for ours, theirs in zip(result.runs, reference.runs):
                assert ours.mv_set == theirs.mv_set

    def test_ea_result_reports_mv_cache_stats(self, always_dedup):
        rng = np.random.default_rng(2)
        blocks = random_blocks(rng, 8)
        config = CompressionConfig(
            block_length=8,
            n_vectors=6,
            runs=1,
            ea=EAParameters(stagnation_limit=10, max_evaluations=250),
        )
        result = EAMVOptimizer(config, seed=5).optimize(blocks)
        ea_result = result.runs[0].ea_result
        assert ea_result.mv_cache_hits > 0  # offspring share parent MVs
        assert ea_result.mv_cache_misses > 0
        assert 0.0 < ea_result.mv_cache_hit_rate < 1.0
        disabled = EAMVOptimizer(
            config.with_updates(mv_cache_size=0), seed=5
        ).optimize(blocks)
        assert disabled.runs[0].ea_result.mv_cache_hits == 0
        assert disabled.runs[0].ea_result.mv_cache_hit_rate == 0.0
        assert disabled.runs[0].rate == result.runs[0].rate


class TestConfigAndStats:
    def test_config_validates_mv_cache_size(self):
        with pytest.raises(ValueError, match="mv_cache_size"):
            CompressionConfig(mv_cache_size=-1)

    def test_fitness_validates_mv_cache_size(self):
        rng = np.random.default_rng(0)
        blocks = random_blocks(rng, 8)
        with pytest.raises(ValueError, match="mv_cache_size"):
            BatchCompressionRateFitness(
                blocks, n_vectors=4, block_length=8, mv_cache_size=-2
            )

    def test_stats_shape_when_disabled(self):
        rng = np.random.default_rng(0)
        blocks = random_blocks(rng, 8)
        fitness = BatchCompressionRateFitness(
            blocks, n_vectors=4, block_length=8, mv_cache_size=0
        )
        stats = fitness.mv_cache_stats
        assert stats.capacity == 0
        assert stats.hit_rate == 0.0
        assert stats.rows_saved_rate == 0.0

    def test_rows_saved_rate_counts_all_dedup_savings(self, always_dedup):
        rng = np.random.default_rng(1)
        blocks = random_blocks(rng, 8)
        fitness = BatchCompressionRateFitness(
            blocks, n_vectors=5, block_length=8
        )
        genome = rng.integers(0, 3, size=5 * 8, dtype=np.int8)
        fitness.evaluate_batch(np.tile(genome, (10, 1)))
        stats = fitness.mv_cache_stats
        assert stats.rows_saved_rate == 1.0 - stats.misses / stats.rows_total
        assert stats.rows_saved_rate > 0.8

    def test_timings_dict_records_stages(self, always_dedup):
        rng = np.random.default_rng(6)
        blocks = random_blocks(rng, 8)
        genomes = rng.integers(0, 3, size=(24, 5 * 8), dtype=np.int8)
        for cache_size, expected in (
            (0, {"pack", "cover", "huffman"}),
            (None, {"pack", "match", "cover", "huffman"}),
        ):
            kwargs = {} if cache_size is None else {"mv_cache_size": cache_size}
            fitness = BatchCompressionRateFitness(
                blocks, n_vectors=5, block_length=8, **kwargs
            )
            timings = {}
            fitness.evaluate_batch(genomes, timings=timings)
            assert set(timings) == expected

"""MV-level match-column caching: dedup, eviction policies, parity.

The PR-4 contract: pricing through the unique-MV dedup path — per-MV
match columns from :meth:`CoveringKernel.match_columns`, cached across
generations in :class:`MVMatchCache`, reassembled by
:func:`cover_packed_columns` — is bit-identical to the fused
per-generation kernels under every kernel, every cache size (including
eviction pressure), and every batch composition (100% duplicates
included).  Seeded EA runs therefore cannot drift when the cache is
enabled, resized, or disabled.

PR-7 extends the contract over the eviction-policy axis: a cached
match column is immutable for a given block table, so *which* entries
a policy retains can only move the hit rate, never a rate — pinned
here by running the same parity suites across every registered policy.
"""

from unittest import mock

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.fitness as fitness_module
from repro.core.blocks import BlockSet
from repro.core.cache import (
    DEFAULT_POLICY,
    POLICY_CHOICES,
    EvictionPolicy,
    make_policy,
)
from repro.core.config import CompressionConfig, EAParameters
from repro.core.covering import cover_masks
from repro.core.fitness import (
    DEFAULT_MV_CACHE_SIZE,
    BatchCompressionRateFitness,
    MVMatchCache,
)
from repro.core.kernels import (
    cover_from_match_columns,
    cover_packed_columns,
    get_kernel,
    kernel_unavailable_reason,
    pack_match_columns,
)
from repro.core.optimizer import EAMVOptimizer

# Factored-parity suites run the native kernel too when this machine
# can compile it (no compiler → it simply drops out of the list).
KERNEL_NAMES = ("gemm", "bitpack", "scalar") + (
    ("native",) if kernel_unavailable_reason("native") is None else ()
)
CACHE_SIZES = (0, 5, DEFAULT_MV_CACHE_SIZE)  # off / eviction pressure / default


@pytest.fixture
def always_dedup(monkeypatch):
    """Force the dedup path for every batch shape (it normally engages
    only on generation-scale batches over non-tiny tables, or large
    tables)."""
    monkeypatch.setattr(fitness_module, "_MV_DEDUP_MIN_GENOMES", 1)
    monkeypatch.setattr(fitness_module, "_MV_DEDUP_MIN_TABLE", 1)


def random_blocks(rng, block_length, n_bits=600):
    care = rng.random(n_bits) < 0.5
    values = rng.random(n_bits) < 0.5
    trits = np.where(care, values.astype(np.int8), np.int8(2))
    return BlockSet.from_trit_array(trits.astype(np.int8), block_length)


class TestMVMatchCache:
    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            MVMatchCache(0)

    def test_get_put_lru_eviction(self):
        cache = MVMatchCache(2)
        one = np.array([1], dtype=np.uint8)
        two = np.array([2], dtype=np.uint8)
        three = np.array([3], dtype=np.uint8)
        cache.put(b"a", one)
        cache.put(b"b", two)
        assert cache.get(b"a").tolist() == [1]  # refreshes "a"
        cache.put(b"c", three)  # evicts the LRU entry: "b"
        assert cache.get(b"b") is None
        assert cache.get(b"a").tolist() == [1]
        assert cache.get(b"c").tolist() == [3]
        assert len(cache) == 2
        assert cache.evictions == 1
        assert cache.hits == 3 and cache.misses == 1

    def test_put_overwrites_in_place(self):
        cache = MVMatchCache(4)
        cache.put(b"k", np.array([9], dtype=np.uint8))
        cache.put(b"k", np.array([7], dtype=np.uint8))
        assert len(cache) == 1
        assert cache.get(b"k").tolist() == [7]

    def test_batch_lookup_insert_roundtrip(self):
        cache = MVMatchCache(8)
        columns = np.arange(12, dtype=np.uint8).reshape(4, 3)
        cache.insert([10, 11, 12, 13], columns)
        slots = cache.lookup([12, 99, 10])
        assert (slots >= 0).tolist() == [True, False, True]
        hits = slots[slots >= 0]
        assert (cache.columns_at(hits) == columns[[2, 0]]).all()
        assert cache.hits == 2 and cache.misses == 1

    def test_bulk_insert_under_eviction_pressure_keeps_newest(self):
        cache = MVMatchCache(2)
        columns = np.arange(10, dtype=np.uint8).reshape(5, 2)
        cache.insert(list(range(5)), columns)
        assert len(cache) == 2
        assert cache.evictions == 3
        # The two surviving keys are the newest, with correct columns.
        assert cache.get(3).tolist() == columns[3].tolist()
        assert cache.get(4).tolist() == columns[4].tolist()
        assert cache.get(0) is None

    def test_rejects_mismatched_column_width(self):
        cache = MVMatchCache(4)
        cache.put(b"a", np.zeros(3, dtype=np.uint8))
        with pytest.raises(ValueError, match="one block table"):
            cache.put(b"b", np.zeros(5, dtype=np.uint8))


def column(value):
    return np.array([value], dtype=np.uint8)


class TestEvictionPolicies:
    """Policy bookkeeping: retention order, not pricing (that's below)."""

    def test_registry(self):
        assert DEFAULT_POLICY in POLICY_CHOICES
        for name in POLICY_CHOICES:
            policy = make_policy(name, 4)
            assert isinstance(policy, EvictionPolicy)
            assert policy.name == name
            assert policy.capacity == 4
        with pytest.raises(ValueError, match="unknown eviction policy"):
            make_policy("fifo", 4)
        with pytest.raises(ValueError, match="capacity"):
            make_policy("lru", 0)

    @pytest.mark.parametrize("name", POLICY_CHOICES)
    def test_cache_accepts_policy_by_name_and_instance(self, name):
        assert MVMatchCache(4, policy=name).policy_name == name
        # An instance brings its own capacity.
        cache = MVMatchCache(4, policy=make_policy(name, 2))
        assert cache.capacity == 2

    @pytest.mark.parametrize("name", POLICY_CHOICES)
    def test_basic_retention_contract(self, name):
        """Every policy: capacity respected, present keys retrievable."""
        cache = MVMatchCache(3, policy=name)
        for value in range(8):
            cache.put(value, column(value))
            assert cache.get(value).tolist() == [value]
        assert len(cache) == 3
        assert cache.evictions == 5
        retained = [key for key in range(8) if cache.get(key) is not None]
        assert len(retained) == 3
        for key in retained:
            assert cache.get(key).tolist() == [key]

    def test_lfu_keeps_frequent_key_through_scan(self):
        """A hot key survives a cold scan that would flush an LRU."""
        lru = MVMatchCache(3, policy="lru")
        lfu = MVMatchCache(3, policy="lfu")
        for cache in (lru, lfu):
            cache.put(b"hot", column(1))
            for _ in range(5):
                assert cache.get(b"hot") is not None
            for value in range(10, 16):  # one-shot cold scan
                cache.put(value, column(value))
        assert lru.get(b"hot") is None
        assert lfu.get(b"hot").tolist() == [1]

    def test_2q_scan_resistance_and_ghost_readmission(self):
        cache = MVMatchCache(8, policy="2q")
        cache.put(b"hot", column(1))
        assert cache.get(b"hot") is not None  # promoted to main
        for value in range(100, 140):  # long cold scan
            cache.put(value, column(value))
        assert cache.get(b"hot").tolist() == [1]
        # A key evicted from probation sits in the ghost list: its
        # column is gone (miss) but readmission lands it in main.
        # The newest ghost (the oldest may itself age out of the
        # bounded ghost list during the readmitting put's eviction).
        policy = cache._policy
        ghosted = next(reversed(policy._ghost))
        assert cache.get(ghosted) is None
        cache.put(ghosted, column(9))
        assert ghosted in policy._main

    def test_segmented_promotes_on_second_touch(self):
        cache = MVMatchCache(4, policy="segmented")
        cache.put(b"a", column(1))
        cache.put(b"b", column(2))
        assert cache.get(b"a") is not None  # promoted to protected
        for value in range(20, 26):
            cache.put(value, column(value))
        # Probationary "b" was flushed by the scan; protected "a" holds.
        assert cache.get(b"b") is None
        assert cache.get(b"a").tolist() == [1]

    @pytest.mark.parametrize("name", POLICY_CHOICES)
    def test_export_state_roundtrips(self, name):
        cache = MVMatchCache(4, policy=name)
        for value in range(6):
            cache.put(value, column(value))
        cache.get(5)
        keys, columns = cache.export_state()
        assert len(keys) == len(cache) == columns.shape[0]
        fresh = MVMatchCache(4, policy=name)
        fresh.load_state(keys, columns)
        assert fresh.warm_loaded == len(cache)
        assert fresh.hits == fresh.misses == fresh.evictions == 0
        for key in keys:
            assert fresh.get(key).tolist() == cache.get(key).tolist()

    @pytest.mark.parametrize("name", POLICY_CHOICES)
    def test_load_into_smaller_cache_keeps_hottest(self, name):
        """items() is coldest-first, so truncation drops the cold end."""
        cache = MVMatchCache(4, policy=name)
        for value in range(4):
            cache.put(value, column(value))
        for _ in range(3):  # keys 2 and 3 are the hot set
            assert cache.get(2) is not None
            assert cache.get(3) is not None
        keys, columns = cache.export_state()
        small = MVMatchCache(2, policy=name)
        small.load_state(keys, columns)
        assert len(small) == 2
        assert small.warm_loaded == 2
        assert small.get(2).tolist() == [2]
        assert small.get(3).tolist() == [3]

    def test_export_empty_cache(self):
        keys, columns = MVMatchCache(4).export_state()
        assert keys == []
        assert columns.shape[0] == 0


class TestFactoredCoverParity:
    """match_columns + cover_packed_columns ≡ the fused kernels."""

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**32),
        st.sampled_from([4, 11, 64, 96]),
    )
    def test_match_columns_agree_with_reference(self, seed, block_length):
        rng = np.random.default_rng(seed)
        blocks = random_blocks(rng, block_length, n_bits=block_length * 40)
        n_vectors = int(rng.integers(1, 20))
        genome = rng.integers(
            0, 3, size=n_vectors * block_length, dtype=np.int8
        )
        fitness = BatchCompressionRateFitness(
            blocks, n_vectors, block_length, mv_cache_size=0
        )
        mv_ones, mv_zeros, _ = fitness.genome_masks_batch(genome)
        per_kernel = {}
        for name in KERNEL_NAMES:
            kernel = get_kernel(name)
            prepared = kernel.prepare(blocks)
            per_kernel[name] = kernel.match_columns(
                prepared, mv_ones[0], mv_zeros[0]
            )
        # Reference: one cover_masks call per standalone MV tells which
        # blocks it matches (assignment >= 0 ⇔ match, single MV).
        for index in range(n_vectors):
            ones = mv_ones[0][index : index + 1]
            zeros = mv_zeros[0][index : index + 1]
            assignment, _, _ = cover_masks(
                blocks.ones,
                blocks.zeros,
                blocks.counts,
                ones,
                zeros,
                np.zeros(1, dtype=np.int64),
            )
            expected = assignment >= 0
            for name in KERNEL_NAMES:
                assert (per_kernel[name][index] == expected).all(), name

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**32),
        st.sampled_from([6, 12, 70]),
    )
    def test_cover_packed_columns_matches_fused_kernel(
        self, seed, block_length
    ):
        rng = np.random.default_rng(seed)
        blocks = random_blocks(rng, block_length, n_bits=block_length * 50)
        n_vectors = int(rng.integers(2, 10))
        n_genomes = int(rng.integers(1, 7))
        genomes = rng.integers(
            0, 3, size=(n_genomes, n_vectors * block_length), dtype=np.int8
        )
        fitness = BatchCompressionRateFitness(
            blocks, n_vectors, block_length, mv_cache_size=0, kernel="scalar"
        )
        mv_ones, mv_zeros, n_unspecified = fitness.genome_masks_batch(genomes)
        orders = np.argsort(n_unspecified, axis=1, kind="stable")
        kernel = get_kernel("bitpack")
        prepared = kernel.prepare(blocks)
        expected = kernel.cover_masks(prepared, mv_ones, mv_zeros, orders)

        flat_ones = mv_ones.reshape(n_genomes * n_vectors, -1)
        flat_zeros = mv_zeros.reshape(n_genomes * n_vectors, -1)
        columns = kernel.match_columns(prepared, flat_ones, flat_zeros)
        mv_index = np.arange(n_genomes * n_vectors).reshape(
            n_genomes, n_vectors
        )
        ordered_mv_index = np.take_along_axis(mv_index, orders, axis=1)
        # At property-test sizes cover_packed_columns auto-picks the
        # unpack+gather strategy; drive the packed L-rank loop directly
        # so both reassembly strategies stay pinned to the kernels.
        from repro.core.kernels.base import _cover_packed_rank_loop

        packed = cover_packed_columns(
            prepared,
            pack_match_columns(columns),
            ordered_mv_index,
            orders,
            want_assignment=True,
        )
        unpacked = cover_from_match_columns(
            prepared, columns, ordered_mv_index, orders, want_assignment=True
        )
        rank_loop = (
            np.full((n_genomes, blocks.n_distinct), -1, dtype=np.int64),
            np.zeros((n_genomes, n_vectors), dtype=np.int64),
            np.zeros(n_genomes, dtype=np.int64),
        )
        _cover_packed_rank_loop(
            prepared,
            pack_match_columns(columns),
            ordered_mv_index,
            orders,
            True,
            None,
            *rank_loop,
        )
        for contender in (packed, unpacked, rank_loop):
            for ours, theirs in zip(contender, expected):
                assert (ours == theirs).all()


class TestDedupFitnessParity:
    """evaluate_batch dedup path ≡ fused path, all kernels and sizes."""

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32))
    def test_generation_scale_batches(self, seed):
        rng = np.random.default_rng(seed)
        blocks = random_blocks(rng, 8)
        # 24 genomes clears the batch-size arm of the engagement
        # heuristic; the table floor is lowered because property-test
        # block sets are far smaller than real tables (hypothesis
        # forbids function-scoped fixtures, hence mock.patch).
        genomes = rng.integers(0, 3, size=(24, 5 * 8), dtype=np.int8)
        reference = None
        patched = mock.patch.object(fitness_module, "_MV_DEDUP_MIN_TABLE", 1)
        for name in KERNEL_NAMES:
            for cache_size in CACHE_SIZES:
                fitness = BatchCompressionRateFitness(
                    blocks,
                    n_vectors=5,
                    block_length=8,
                    kernel=name,
                    mv_cache_size=cache_size,
                )
                with patched:
                    rates = fitness.evaluate_batch(genomes)
                    repriced = fitness.evaluate_batch(genomes)  # warm pass
                assert (rates == repriced).all()
                if reference is None:
                    reference = rates
                assert (rates == reference).all(), (name, cache_size)

    def test_all_copy_generation_dedups_to_parent_rows(self, always_dedup):
        """A 100% duplicate batch prices one genome's worth of MVs."""
        rng = np.random.default_rng(3)
        blocks = random_blocks(rng, 8)
        genome = rng.integers(0, 3, size=5 * 8, dtype=np.int8)
        batch = np.tile(genome, (32, 1))
        fused = BatchCompressionRateFitness(
            blocks, n_vectors=5, block_length=8, mv_cache_size=0
        )
        deduped = BatchCompressionRateFitness(
            blocks, n_vectors=5, block_length=8
        )
        assert (
            deduped.evaluate_batch(batch) == fused.evaluate_batch(batch)
        ).all()
        stats = deduped.mv_cache_stats
        assert stats.rows_total == 32 * 5
        assert stats.rows_unique <= 5  # duplicate MVs inside the genome too
        assert stats.misses == stats.rows_unique
        assert deduped.mv_cache_stats.hit_rate == 0.0  # single cold batch
        deduped.evaluate_batch(batch)
        assert deduped.mv_cache_stats.hits == stats.rows_unique

    def test_eviction_pressure_never_changes_rates(self, always_dedup):
        rng = np.random.default_rng(9)
        blocks = random_blocks(rng, 8)
        fused = BatchCompressionRateFitness(
            blocks, n_vectors=6, block_length=8, mv_cache_size=0
        )
        tiny = BatchCompressionRateFitness(
            blocks, n_vectors=6, block_length=8, mv_cache_size=3
        )
        for _ in range(6):
            genomes = rng.integers(0, 3, size=(7, 6 * 8), dtype=np.int8)
            assert (
                tiny.evaluate_batch(genomes) == fused.evaluate_batch(genomes)
            ).all()
        stats = tiny.mv_cache_stats
        assert stats.size <= 3
        assert stats.evictions > 0

    @pytest.mark.parametrize("policy", POLICY_CHOICES)
    def test_eviction_policy_never_changes_rates(self, policy, always_dedup):
        """Same rates under every policy, under eviction pressure."""
        rng = np.random.default_rng(21)
        blocks = random_blocks(rng, 8)
        fused = BatchCompressionRateFitness(
            blocks, n_vectors=6, block_length=8, mv_cache_size=0
        )
        cached = BatchCompressionRateFitness(
            blocks, n_vectors=6, block_length=8, mv_cache_size=4,
            mv_cache_policy=policy,
        )
        for _ in range(5):
            genomes = rng.integers(0, 3, size=(7, 6 * 8), dtype=np.int8)
            assert (
                cached.evaluate_batch(genomes)
                == fused.evaluate_batch(genomes)
            ).all()
        stats = cached.mv_cache_stats
        assert stats.policy == policy
        assert stats.evictions > 0

    def test_wide_blocks_use_bytes_keys(self, always_dedup):
        """K > 32 rows dedup through the lexsort + bytes-key path."""
        rng = np.random.default_rng(4)
        blocks = random_blocks(rng, 70, n_bits=70 * 30)
        genomes = rng.integers(0, 3, size=(6, 4 * 70), dtype=np.int8)
        genomes[3:] = genomes[:3]
        fused = BatchCompressionRateFitness(
            blocks, n_vectors=4, block_length=70, mv_cache_size=0
        )
        deduped = BatchCompressionRateFitness(
            blocks, n_vectors=4, block_length=70
        )
        assert (
            deduped.evaluate_batch(genomes) == fused.evaluate_batch(genomes)
        ).all()
        stats = deduped.mv_cache_stats
        assert 0 < stats.rows_unique <= 12  # half the batch was copies

    def test_dedup_disengages_below_thresholds(self):
        """Tiny batches on small tables bypass the cache by design."""
        rng = np.random.default_rng(5)
        blocks = random_blocks(rng, 8)
        fitness = BatchCompressionRateFitness(
            blocks, n_vectors=5, block_length=8
        )
        fitness.evaluate_batch(
            rng.integers(0, 3, size=(2, 5 * 8), dtype=np.int8)
        )
        assert fitness.mv_cache_stats.rows_total == 0


class TestSeededRunParity:
    """Seeded EA runs are byte-identical across cache sizes × kernels."""

    @pytest.mark.parametrize("kernel", KERNEL_NAMES)
    def test_optimizer_results_cache_invariant(self, kernel, always_dedup):
        rng = np.random.default_rng(11)
        blocks = random_blocks(rng, 8)
        results = {}
        for cache_size in CACHE_SIZES:
            config = CompressionConfig(
                block_length=8,
                n_vectors=6,
                runs=2,
                kernel=kernel,
                mv_cache_size=cache_size,
                ea=EAParameters(stagnation_limit=10, max_evaluations=250),
            )
            results[cache_size] = EAMVOptimizer(config, seed=77).optimize(
                blocks
            )
        reference = results[CACHE_SIZES[0]]
        for cache_size in CACHE_SIZES[1:]:
            result = results[cache_size]
            assert result.mean_rate == reference.mean_rate
            assert result.best_rate == reference.best_rate
            for ours, theirs in zip(result.runs, reference.runs):
                assert ours.mv_set == theirs.mv_set

    @pytest.mark.parametrize("policy", POLICY_CHOICES)
    def test_optimizer_results_policy_invariant(self, policy, always_dedup):
        """Seeded results are byte-identical under every eviction
        policy — an eviction can only cost a recomputation."""
        rng = np.random.default_rng(13)
        blocks = random_blocks(rng, 8)

        def run(**overrides):
            settings = dict(
                block_length=8,
                n_vectors=6,
                runs=2,
                mv_cache_size=4,  # heavy eviction pressure
                ea=EAParameters(stagnation_limit=10, max_evaluations=250),
            )
            settings.update(overrides)
            config = CompressionConfig(**settings)
            return EAMVOptimizer(config, seed=77).optimize(blocks)

        reference = run(mv_cache_size=0)
        result = run(mv_cache_policy=policy)
        assert result.mean_rate == reference.mean_rate
        assert result.best_rate == reference.best_rate
        for ours, theirs in zip(result.runs, reference.runs):
            assert ours.mv_set == theirs.mv_set

    def test_ea_result_reports_mv_cache_stats(self, always_dedup):
        rng = np.random.default_rng(2)
        blocks = random_blocks(rng, 8)
        config = CompressionConfig(
            block_length=8,
            n_vectors=6,
            runs=1,
            ea=EAParameters(stagnation_limit=10, max_evaluations=250),
        )
        result = EAMVOptimizer(config, seed=5).optimize(blocks)
        ea_result = result.runs[0].ea_result
        assert ea_result.mv_cache_hits > 0  # offspring share parent MVs
        assert ea_result.mv_cache_misses > 0
        assert 0.0 < ea_result.mv_cache_hit_rate < 1.0
        disabled = EAMVOptimizer(
            config.with_updates(mv_cache_size=0), seed=5
        ).optimize(blocks)
        assert disabled.runs[0].ea_result.mv_cache_hits == 0
        assert disabled.runs[0].ea_result.mv_cache_hit_rate == 0.0
        assert disabled.runs[0].rate == result.runs[0].rate


class TestConfigAndStats:
    def test_config_validates_mv_cache_size(self):
        with pytest.raises(ValueError, match="mv_cache_size"):
            CompressionConfig(mv_cache_size=-1)

    def test_fitness_validates_mv_cache_size(self):
        rng = np.random.default_rng(0)
        blocks = random_blocks(rng, 8)
        with pytest.raises(ValueError, match="mv_cache_size"):
            BatchCompressionRateFitness(
                blocks, n_vectors=4, block_length=8, mv_cache_size=-2
            )

    def test_config_validates_mv_cache_policy(self):
        with pytest.raises(ValueError, match="unknown MV cache policy"):
            CompressionConfig(mv_cache_policy="mru")
        for name in POLICY_CHOICES:
            assert CompressionConfig(mv_cache_policy=name).mv_cache_policy == name

    def test_stats_shape_when_disabled(self):
        rng = np.random.default_rng(0)
        blocks = random_blocks(rng, 8)
        fitness = BatchCompressionRateFitness(
            blocks, n_vectors=4, block_length=8, mv_cache_size=0
        )
        stats = fitness.mv_cache_stats
        assert stats.capacity == 0
        assert stats.hit_rate == 0.0
        assert stats.rows_saved_rate == 0.0
        assert stats.policy == ""
        assert stats.warm_loaded == 0

    def test_zero_lookup_rates_are_zero_not_nan(self):
        """Regression: every rate is 0.0 (never NaN or a division
        error) when the cache exists but nothing was ever looked up."""
        rng = np.random.default_rng(0)
        blocks = random_blocks(rng, 8)
        fitness = BatchCompressionRateFitness(
            blocks, n_vectors=4, block_length=8  # cache on, untouched
        )
        stats = fitness.mv_cache_stats
        assert stats.hits == stats.misses == 0
        assert stats.hit_rate == 0.0
        assert stats.rows_saved_rate == 0.0
        assert stats.policy == DEFAULT_POLICY

    def test_zero_lookup_ea_result_hit_rate_is_zero(self):
        """EAResult.mv_cache_hit_rate at zero activity: 0.0, not NaN."""
        rng = np.random.default_rng(8)
        blocks = random_blocks(rng, 8)
        config = CompressionConfig(
            block_length=8,
            n_vectors=4,
            runs=1,
            mv_cache_size=0,
            ea=EAParameters(stagnation_limit=3, max_evaluations=40),
        )
        ea_result = (
            EAMVOptimizer(config, seed=3).optimize(blocks).runs[0].ea_result
        )
        assert ea_result.mv_cache_hits == 0
        assert ea_result.mv_cache_misses == 0
        assert ea_result.mv_cache_hit_rate == 0.0
        assert not np.isnan(ea_result.mv_cache_hit_rate)
        assert ea_result.mv_cache_warm_loaded == 0

    def test_rows_saved_rate_counts_all_dedup_savings(self, always_dedup):
        rng = np.random.default_rng(1)
        blocks = random_blocks(rng, 8)
        fitness = BatchCompressionRateFitness(
            blocks, n_vectors=5, block_length=8
        )
        genome = rng.integers(0, 3, size=5 * 8, dtype=np.int8)
        fitness.evaluate_batch(np.tile(genome, (10, 1)))
        stats = fitness.mv_cache_stats
        assert stats.rows_saved_rate == 1.0 - stats.misses / stats.rows_total
        assert stats.rows_saved_rate > 0.8

    def test_timings_dict_records_stages(self, always_dedup):
        rng = np.random.default_rng(6)
        blocks = random_blocks(rng, 8)
        genomes = rng.integers(0, 3, size=(24, 5 * 8), dtype=np.int8)
        for cache_size, expected in (
            (0, {"pack", "cover", "huffman"}),
            (None, {"pack", "match", "cover", "huffman"}),
        ):
            kwargs = {} if cache_size is None else {"mv_cache_size": cache_size}
            fitness = BatchCompressionRateFitness(
                blocks, n_vectors=5, block_length=8, **kwargs
            )
            timings = {}
            fitness.evaluate_batch(genomes, timings=timings)
            assert set(timings) == expected

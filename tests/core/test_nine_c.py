"""Unit tests for the 9C baseline, including the paper's K=6 example."""

import pytest

from repro.coding.prefix import is_prefix_free
from repro.core.blocks import BlockSet
from repro.core.covering import cover
from repro.core.nine_c import NINE_C_CODEWORDS, compress_nine_c, nine_c_mv_set


class TestNineCMVSet:
    def test_paper_k6_vectors(self):
        """The exact nine vectors of the paper's introduction (K=6)."""
        mvs = [str(mv) for mv in nine_c_mv_set(6)]
        assert mvs == [
            "000000",
            "111111",
            "000111",
            "111000",
            "111UUU",
            "UUU111",
            "000UUU",
            "UUU000",
            "UUUUUU",
        ]

    def test_k8_vector_widths(self):
        mvs = nine_c_mv_set(8)
        assert all(mv.length == 8 for mv in mvs)
        assert [mv.n_unspecified for mv in mvs] == [0, 0, 0, 0, 4, 4, 4, 4, 8]

    def test_odd_k_rejected(self):
        with pytest.raises(ValueError):
            nine_c_mv_set(7)

    def test_k_zero_rejected(self):
        with pytest.raises(ValueError):
            nine_c_mv_set(0)

    def test_fixed_code_is_prefix_free(self):
        assert is_prefix_free(list(NINE_C_CODEWORDS.values()))

    def test_paper_fixed_codeword_assignment(self):
        """Section 4: '0' for all-0, '10' for all-1, ... '1111' for all-U."""
        assert NINE_C_CODEWORDS[0] == "0"
        assert NINE_C_CODEWORDS[1] == "10"
        assert NINE_C_CODEWORDS[2] == "11000"
        assert NINE_C_CODEWORDS[3] == "11001"
        assert NINE_C_CODEWORDS[4] == "11010"
        assert NINE_C_CODEWORDS[5] == "11011"
        assert NINE_C_CODEWORDS[6] == "11100"
        assert NINE_C_CODEWORDS[7] == "11101"
        assert NINE_C_CODEWORDS[8] == "1111"


class TestNineCEncodingExamples:
    def test_paper_block_111100_uses_v5_with_fills(self):
        """Paper Section 1: 111100 is coded as C(v(5)) + fills 100."""
        blocks = BlockSet.from_string("111100", 6)
        result = compress_nine_c(blocks)
        # v(5) = 111UUU has index 4; encoding = '11010' + '100' = 8 bits.
        assert result.covering.frequency_map() == {4: 1}
        assert result.compressed_bits == 8

    def test_paper_block_111000_prefers_v4(self):
        """111000 matches v(4) exactly (0 fills) and must use it."""
        blocks = BlockSet.from_string("111000", 6)
        result = compress_nine_c(blocks)
        assert result.covering.frequency_map() == {3: 1}
        assert result.compressed_bits == 5  # '11001'

    def test_all_zero_block_costs_one_bit(self):
        blocks = BlockSet.from_string("000000" * 10, 6)
        result = compress_nine_c(blocks)
        assert result.compressed_bits == 10

    def test_arbitrary_block_falls_back_to_all_u(self):
        blocks = BlockSet.from_string("010101", 6)
        result = compress_nine_c(blocks)
        # v(9): '1111' + 6 fills = 10 bits.
        assert result.covering.frequency_map() == {8: 1}
        assert result.compressed_bits == 10

    def test_covering_respects_nu_order(self):
        """An all-X block matches v(1) first (fewest Us, first listed)."""
        blocks = BlockSet.from_string("XXXXXX", 6)
        result = cover(blocks, nine_c_mv_set(6))
        assert result.frequency_map() == {0: 1}


class TestNineCHuffmanVariant:
    def test_huffman_beats_or_ties_fixed_code(self):
        """9C+HC re-codes the same covering optimally, so it can only
        match or improve the fixed code (paper: 42.6% -> 46.8% avg)."""
        text = "00000000" * 50 + "11111111" * 5 + "0101XXXX" * 20 + "1111XXXX" * 10
        blocks = BlockSet.from_string(text, 8)
        fixed = compress_nine_c(blocks, use_huffman=False)
        huffman = compress_nine_c(blocks, use_huffman=True)
        assert huffman.compressed_bits <= fixed.compressed_bits
        assert huffman.rate >= fixed.rate

    def test_same_covering_different_codewords(self):
        text = "00000000" * 5 + "11110000" * 3
        blocks = BlockSet.from_string(text, 8)
        fixed = compress_nine_c(blocks, use_huffman=False)
        huffman = compress_nine_c(blocks, use_huffman=True)
        assert fixed.covering.frequency_map() == huffman.covering.frequency_map()

    def test_odd_block_length_rejected(self):
        blocks = BlockSet.from_string("010", 3)
        with pytest.raises(ValueError):
            compress_nine_c(blocks)

"""Unit and property tests for end-to-end compression."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.blocks import BlockSet
from repro.core.compressor import compress_blocks, compression_rate
from repro.core.covering import UncoverableError
from repro.core.encoding import EncodingStrategy
from repro.core.matching import MVSet

from ..conftest import mv_strings, trit_strings


class TestCompressionRate:
    def test_positive_rate(self):
        assert compression_rate(100, 40) == 60.0

    def test_negative_rate_possible(self):
        # The paper's Table 1 has -1.0% and -2.0% entries.
        assert compression_rate(100, 102) == -2.0

    def test_zero_original_rejected(self):
        with pytest.raises(ValueError):
            compression_rate(0, 0)


class TestCompressBlocks:
    def test_stream_length_matches_table_prediction(self):
        blocks = BlockSet.from_string("111 000 111 10X 0X0", 3)
        result = compress_blocks(
            blocks, MVSet.from_strings(["111", "000", "UUU"])
        )
        assert result.payload_bits == result.table.total_bits

    def test_uncoverable_raises(self):
        blocks = BlockSet.from_string("010", 3)
        with pytest.raises(UncoverableError):
            compress_blocks(blocks, MVSet.from_strings(["111"]))

    def test_rate_computation(self):
        # 4 blocks of "11": MV "11" used 4 times, Huffman gives 1 bit
        # per block -> 4 bits vs 8 original.
        blocks = BlockSet.from_string("11111111", 2)
        result = compress_blocks(blocks, MVSet.from_strings(["11", "UU"]))
        assert result.compressed_bits == 4
        assert result.rate == 50.0

    def test_fill_bits_emitted_after_codeword(self):
        # Single block 10 encoded by UU: codeword (1 bit) + fills 1,0.
        blocks = BlockSet.from_string("10", 2)
        result = compress_blocks(blocks, MVSet.from_strings(["UU"]))
        bits = "".join(
            str((result.payload[i // 8] >> (7 - i % 8)) & 1)
            for i in range(result.payload_bits)
        )
        assert bits == "010"  # canonical single-codeword '0', then fills 1,0

    def test_block_length_mismatch(self):
        blocks = BlockSet.from_string("0101", 4)
        with pytest.raises(ValueError):
            compress_blocks(blocks, MVSet.from_strings(["01"]))

    def test_mv_usage_reports_final_frequencies(self):
        blocks = BlockSet.from_string("111 111 000", 3)
        result = compress_blocks(blocks, MVSet.from_strings(["111", "000", "UUU"]))
        assert result.mv_usage() == {"111": 2, "000": 1}

    def test_code_table_bits_positive(self):
        blocks = BlockSet.from_string("111 000", 3)
        result = compress_blocks(blocks, MVSet.from_strings(["111", "000", "UUU"]))
        assert result.code_table_bits() > 0

    def test_subsumption_strategy_never_worse(self):
        text = "1110 1110 1110 111X 111X 0000 0000 1111 0X01"
        blocks = BlockSet.from_string(text, 4)
        mvs = MVSet.from_strings(["1110", "111U", "0000", "UUUU"])
        plain = compress_blocks(blocks, mvs, EncodingStrategy.HUFFMAN)
        refined = compress_blocks(blocks, mvs, EncodingStrategy.HUFFMAN_SUBSUME)
        assert refined.compressed_bits <= plain.compressed_bits


class TestCompressorProperties:
    @settings(max_examples=50)
    @given(
        trit_strings(min_size=1, max_size=120),
        st.lists(mv_strings(4), min_size=1, max_size=6),
    )
    def test_stream_bits_always_match_prediction(self, text, mv_texts):
        blocks = BlockSet.from_string(text, 4)
        mv_set = MVSet.from_strings(mv_texts + ["UUUU"])
        for strategy in (EncodingStrategy.HUFFMAN, EncodingStrategy.HUFFMAN_SUBSUME):
            result = compress_blocks(blocks, mv_set, strategy)
            assert result.payload_bits == result.table.total_bits

    @settings(max_examples=50)
    @given(trit_strings(min_size=1, max_size=120))
    def test_all_u_only_expands_by_one_bit_per_block(self, text):
        """With only the all-U MV, every block costs K+1 bits."""
        blocks = BlockSet.from_string(text, 4)
        result = compress_blocks(blocks, MVSet.from_strings(["UUUU"]))
        assert result.compressed_bits == blocks.n_blocks * 5

"""Cross-kernel parity and registry tests for ``repro.core.kernels``.

The subsystem's contract is bit-identical results from every kernel:
``gemm`` ≡ ``bitpack`` ≡ the scalar reference ``cover_masks`` loop,
including the batch early-exit convention (uncoverable genomes report
exact ``uncovered`` counts but all ``-1`` assignment rows and zero
frequencies) and multi-word masks (K > 64).  Seeded experiments stay
byte-identical no matter which kernel priced them — these tests pin
that property at the kernel, fitness, EA-run and compressor layers.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.blocks import BlockSet, mask_word_count, pack_bits_to_words
from repro.core.compressor import compress_blocks
from repro.core.config import CompressionConfig, EAParameters
from repro.core.covering import cover_masks, cover_masks_batch
from repro.core.decompressor import verify_roundtrip
from repro.core.fitness import BatchCompressionRateFitness
from repro.core.kernels import (
    BitpackKernel,
    CoveringKernel,
    GemmKernel,
    NativeKernel,
    ScalarKernel,
    available_kernels,
    get_kernel,
    kernel_unavailable_reason,
    register_kernel,
    resolve_kernel,
    select_kernel_name,
    usable_kernels,
)
from repro.core.optimizer import EAMVOptimizer
from repro.parallel import ThreadBackend
from repro.testdata.synthetic import (
    WIDE_BLOCK_LENGTH,
    WIDE_BLOCK_SPEC,
    wide_block_test_set,
)

# The native kernel joins the parity suites only where it can run:
# asking availability here compiles on first use (warming the build
# cache for the whole session) and yields the skip reason otherwise.
NATIVE_UNAVAILABLE = kernel_unavailable_reason("native")
KERNEL_NAMES = ("gemm", "bitpack", "scalar") + (
    ("native",) if NATIVE_UNAVAILABLE is None else ()
)
requires_native = pytest.mark.skipif(
    NATIVE_UNAVAILABLE is not None,
    reason=f"native kernel unavailable: {NATIVE_UNAVAILABLE}",
)


@pytest.fixture
def no_native(monkeypatch):
    """Force the no-compiler path for the duration of one test."""
    from repro.core.kernels import native as native_module

    monkeypatch.setenv("REPRO_NATIVE_DISABLE", "1")
    native_module._reset_native_state()
    yield
    native_module._reset_native_state()


def random_workload(rng, block_length):
    """Random block set + genome batch over the given mask width."""
    n_distinct = int(rng.integers(1, 60))
    n_vectors = int(rng.integers(1, 14))
    n_genomes = int(rng.integers(1, 9))
    n_words = mask_word_count(block_length)

    def random_masks(count):
        bits = rng.integers(0, 2, size=(count, block_length))
        zero_bits = rng.integers(0, 2, size=(count, block_length)) & ~bits
        ones = pack_bits_to_words(bits)
        zeros = pack_bits_to_words(zero_bits)
        if n_words == 1:
            return ones[:, 0], zeros[:, 0]
        return ones, zeros

    block_ones, block_zeros = random_masks(n_distinct)
    counts = rng.integers(1, 9, n_distinct).astype(np.int64)
    mv_shape = (
        (n_genomes, n_vectors)
        if n_words == 1
        else (n_genomes, n_vectors, n_words)
    )
    mv_ones = np.empty(mv_shape, dtype=np.uint64)
    mv_zeros = np.empty(mv_shape, dtype=np.uint64)
    orders = np.empty((n_genomes, n_vectors), dtype=np.int64)
    for row in range(n_genomes):
        mv_ones[row], mv_zeros[row] = random_masks(n_vectors)
        orders[row] = rng.permutation(n_vectors)
    return block_ones, block_zeros, counts, mv_ones, mv_zeros, orders


class TestCrossKernelParity:
    """gemm ≡ bitpack ≡ scalar, against the reference loop per row."""

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**32),
        st.sampled_from([3, 9, 14, 33, 64, 70, 96, 130]),
    )
    def test_kernels_match_reference_loop(self, seed, block_length):
        rng = np.random.default_rng(seed)
        (
            block_ones,
            block_zeros,
            counts,
            mv_ones,
            mv_zeros,
            orders,
        ) = random_workload(rng, block_length)
        per_kernel = {
            name: cover_masks_batch(
                block_ones,
                block_zeros,
                counts,
                mv_ones,
                mv_zeros,
                orders,
                block_length=block_length,
                kernel=name,
            )
            for name in KERNEL_NAMES
        }
        n_genomes = orders.shape[0]
        reference = per_kernel["scalar"]
        for row in range(n_genomes):
            ref_assignment, ref_frequencies, ref_uncovered = cover_masks(
                block_ones,
                block_zeros,
                counts,
                mv_ones[row],
                mv_zeros[row],
                orders[row],
            )
            assert reference[2][row] == ref_uncovered
            if ref_uncovered == 0:
                assert (reference[0][row] == ref_assignment).all()
                assert (reference[1][row] == ref_frequencies).all()
            else:  # the batch early-exit contract
                assert (reference[0][row] == -1).all()
                assert (reference[1][row] == 0).all()
        for name in KERNEL_NAMES:
            if name == "scalar":
                continue
            for ours, theirs in zip(per_kernel[name], reference):
                assert (ours == theirs).all(), name

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32))
    def test_uncoverable_rows_early_exit_on_every_kernel(self, seed):
        rng = np.random.default_rng(seed)
        block_length = 6
        # Fully-specified complementary blocks and a single fully
        # specified MV: at most one block row can ever be covered.
        block_ones = np.asarray([0b111111, 0b000000], dtype=np.uint64)
        block_zeros = np.asarray([0b000000, 0b111111], dtype=np.uint64)
        counts = rng.integers(1, 5, 2).astype(np.int64)
        mv_ones = rng.integers(0, 2**6, (3, 1), dtype=np.uint64)
        mv_zeros = (~mv_ones) & np.uint64(0b111111)
        orders = np.zeros((3, 1), dtype=np.int64)
        results = {
            name: cover_masks_batch(
                block_ones, block_zeros, counts,
                mv_ones, mv_zeros, orders,
                block_length=block_length, kernel=name,
            )
            for name in KERNEL_NAMES
        }
        for name in KERNEL_NAMES:
            assignment, frequencies, uncovered = results[name]
            assert (uncovered > 0).all(), name
            assert (assignment == -1).all(), name
            assert (frequencies == 0).all(), name
        for name in KERNEL_NAMES:
            if name == "scalar":
                continue
            for ours, theirs in zip(results[name], results["scalar"]):
                assert (ours == theirs).all()

    def test_single_genome_word_masks_promote_to_batch_of_one(self):
        """(L, W) masks + 1-D order must read as ONE genome, not L."""
        from repro.core.matching import MVSet

        rng = np.random.default_rng(8)
        trits = rng.integers(0, 3, size=96 * 11).astype(np.int8)
        blocks = BlockSet.from_trit_array(trits, 96)
        mv_set = MVSet.from_genome(
            np.full(96 * 4, 2, dtype=np.int8), 96
        )  # all-U MVs: every block covered by the first in order
        mv_ones, mv_zeros = mv_set.mask_arrays()
        assert mv_ones.shape == (4, 2)  # the ambiguous (L, W) shape
        order = np.asarray(mv_set.covering_order(), dtype=np.int64)
        for name in KERNEL_NAMES:
            assignment, frequencies, uncovered = cover_masks_batch(
                blocks.ones, blocks.zeros, blocks.counts,
                mv_ones, mv_zeros, order,
                block_length=96, kernel=name,
            )
            assert assignment.shape == (1, blocks.n_distinct), name
            assert frequencies.shape == (1, 4), name
            assert uncovered.tolist() == [0], name
            assert (assignment == order[0]).all(), name
            assert frequencies[0, order[0]] == blocks.n_blocks, name

    def test_empty_blocks_and_empty_batch(self):
        empty_u64 = np.empty(0, dtype=np.uint64)
        for name in KERNEL_NAMES:
            assignment, frequencies, uncovered = cover_masks_batch(
                empty_u64, empty_u64, np.empty(0, dtype=np.int64),
                np.zeros((3, 4), dtype=np.uint64),
                np.zeros((3, 4), dtype=np.uint64),
                np.tile(np.arange(4), (3, 1)),
                kernel=name,
            )
            assert assignment.shape == (3, 0)
            assert (frequencies == 0).all()
            assert (uncovered == 0).all()


class TestShardingKnobs:
    """Sharding and thread fan-out must never change results."""

    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**32),
        st.integers(min_value=1, max_value=17),
    )
    def test_shard_size_is_result_invariant(self, seed, shard_size):
        rng = np.random.default_rng(seed)
        workload = random_workload(rng, 11)
        block_ones, block_zeros, counts, mv_ones, mv_zeros, orders = workload
        baseline = get_kernel("bitpack")
        sharded = BitpackKernel(shard_size=shard_size)
        results = []
        for kern in (baseline, sharded):
            prepared = kern.prepare_masks(block_ones, block_zeros, counts, 11)
            results.append(
                kern.cover_masks(prepared, mv_ones, mv_zeros, orders)
            )
        for ours, theirs in zip(results[0], results[1]):
            assert (ours == theirs).all()

    def test_thread_backend_shards_match_serial(self):
        rng = np.random.default_rng(5)
        workload = random_workload(rng, 24)
        block_ones, block_zeros, counts, mv_ones, mv_zeros, orders = workload
        serial = BitpackKernel(shard_size=3)
        threaded = BitpackKernel(shard_size=3, shard_backend=ThreadBackend(2))
        results = []
        for kern in (serial, threaded):
            prepared = kern.prepare_masks(block_ones, block_zeros, counts, 24)
            results.append(
                kern.cover_masks(prepared, mv_ones, mv_zeros, orders)
            )
        for ours, theirs in zip(results[0], results[1]):
            assert (ours == theirs).all()

    def test_shard_size_validated(self):
        with pytest.raises(ValueError):
            BitpackKernel(shard_size=0)


class TestRegistry:
    def test_available_kernels(self):
        names = available_kernels()
        assert set(KERNEL_NAMES) <= set(names)

    def test_get_kernel_unknown_name(self):
        with pytest.raises(ValueError, match="unknown covering kernel"):
            get_kernel("nonsense")

    def test_auto_never_resolves_by_get(self):
        with pytest.raises(ValueError):
            get_kernel("auto")

    def test_resolve_passes_instances_through(self):
        kern = GemmKernel()
        assert (
            resolve_kernel(
                kern, n_genomes=4, n_distinct=10, n_vectors=4, block_length=8
            )
            is kern
        )

    def test_register_rejects_reserved_names(self):
        with pytest.raises(ValueError):
            register_kernel("auto", GemmKernel)
        with pytest.raises(ValueError):
            register_kernel("", GemmKernel)

    def test_auto_heuristic_shapes(self, no_native):
        # The array-kernel heuristic, exactly as before the native
        # kernel existed (pinned by forcing the no-compiler path).
        # Tiny one-off covering → scalar.
        assert select_kernel_name(1, 8, 4, 8) == ScalarKernel.name
        # Narrow lanes over a tiny table → gemm (cache-resident BLAS).
        assert select_kernel_name(256, 100, 64, 12) == GemmKernel.name
        # Narrow lanes past the table threshold → bitpack.
        assert select_kernel_name(256, 900, 64, 12) == BitpackKernel.name
        assert select_kernel_name(256, 5000, 64, 64) == BitpackKernel.name
        # Wide lanes over a modest table → gemm.
        assert select_kernel_name(256, 400, 64, 96) == GemmKernel.name
        # Wide lanes over a huge table → back to bitpack.
        assert select_kernel_name(256, 4096, 64, 96) == BitpackKernel.name

    @requires_native
    def test_auto_prefers_native_when_available(self):
        # The compiled loop measured fastest on every batched shape on
        # this container class, so with a toolchain present the
        # default floors hand every non-scalar shape to it.
        assert select_kernel_name(1, 8, 4, 8) == ScalarKernel.name
        for shape in (
            (256, 100, 64, 12),
            (256, 900, 64, 12),
            (256, 5000, 64, 64),
            (256, 400, 64, 96),
            (256, 4096, 64, 96),
        ):
            assert select_kernel_name(*shape) == NativeKernel.name, shape

    @requires_native
    def test_profile_can_raise_native_floors(self):
        from repro.tuning import TuningProfile

        profile = TuningProfile(
            native_min_distinct=10_000, native_wide_min_distinct=10_000
        )
        assert (
            select_kernel_name(256, 900, 64, 12, profile=profile)
            == BitpackKernel.name
        )
        assert (
            select_kernel_name(256, 400, 64, 96, profile=profile)
            == GemmKernel.name
        )

    def test_kernels_repr_names(self):
        for name in KERNEL_NAMES:
            kern = get_kernel(name)
            assert isinstance(kern, CoveringKernel)
            assert kern.name == name
            assert name in repr(kern)


class TestAvailabilityResolution:
    """Unavailable kernels: explicit requests fail, auto skips quietly."""

    def test_native_always_registered(self):
        # Registration is not usability: the name stays valid
        # configuration even on a toolchain-less machine.
        assert "native" in available_kernels()

    def test_explicit_unavailable_kernel_raises(self, no_native):
        with pytest.raises(ValueError, match="unavailable on this machine"):
            resolve_kernel(
                "native", n_genomes=32, n_distinct=900,
                n_vectors=32, block_length=12,
            )

    def test_auto_silently_skips_unavailable(self, no_native):
        kern = resolve_kernel(
            "auto", n_genomes=32, n_distinct=900,
            n_vectors=32, block_length=12,
        )
        assert kern.name == BitpackKernel.name
        assert "native" not in usable_kernels()
        assert kernel_unavailable_reason("native") is not None

    def test_unknown_name_still_raises(self):
        with pytest.raises(ValueError, match="unknown covering kernel"):
            kernel_unavailable_reason("nonsense")

    @requires_native
    def test_native_usable_with_compiler(self):
        assert "native" in usable_kernels()
        assert kernel_unavailable_reason("native") is None
        kern = resolve_kernel(
            "native", n_genomes=32, n_distinct=900,
            n_vectors=32, block_length=12,
        )
        assert kern.name == NativeKernel.name


class TestFitnessKernelChoice:
    @staticmethod
    def _blocks(rng, block_length=8, n_bits=400):
        care = rng.random(n_bits) < 0.5
        values = rng.random(n_bits) < 0.5
        trits = np.where(care, values.astype(np.int8), np.int8(2))
        return BlockSet.from_trit_array(trits.astype(np.int8), block_length)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32))
    def test_batch_rates_identical_across_kernels(self, seed):
        rng = np.random.default_rng(seed)
        blocks = self._blocks(rng)
        genomes = rng.integers(0, 3, size=(12, 5 * 8), dtype=np.int8)
        rates = {}
        for name in KERNEL_NAMES:
            fitness = BatchCompressionRateFitness(
                blocks, n_vectors=5, block_length=8, kernel=name
            )
            rates[name] = fitness.evaluate_batch(genomes)
            assert fitness.kernel_name == name
        for name in KERNEL_NAMES[1:]:
            assert (rates["gemm"] == rates[name]).all(), name

    def test_auto_resolves_on_first_batch(self):
        rng = np.random.default_rng(3)
        blocks = self._blocks(rng)
        fitness = BatchCompressionRateFitness(
            blocks, n_vectors=5, block_length=8
        )
        assert fitness.kernel_name == "auto"
        fitness.evaluate_batch(rng.integers(0, 3, size=(4, 40), dtype=np.int8))
        assert fitness.kernel_name in available_kernels()

    def test_kernel_instance_accepted(self):
        rng = np.random.default_rng(4)
        blocks = self._blocks(rng)
        fitness = BatchCompressionRateFitness(
            blocks, n_vectors=5, block_length=8, kernel=BitpackKernel(shard_size=4)
        )
        assert fitness.kernel_name == "bitpack"
        rates = fitness.evaluate_batch(
            rng.integers(0, 3, size=(4, 40), dtype=np.int8)
        )
        assert rates.shape == (4,)


class TestSeededRunsAcrossKernels:
    """One seeded EA run must land on the same genome under any kernel."""

    def test_optimizer_results_kernel_invariant(self):
        rng = np.random.default_rng(11)
        care = rng.random(600) < 0.5
        values = rng.random(600) < 0.5
        trits = np.where(care, values.astype(np.int8), np.int8(2))
        blocks = BlockSet.from_trit_array(trits.astype(np.int8), 8)
        results = {}
        for kernel in KERNEL_NAMES:
            config = CompressionConfig(
                block_length=8,
                n_vectors=6,
                runs=2,
                kernel=kernel,
                ea=EAParameters(stagnation_limit=10, max_evaluations=300),
            )
            results[kernel] = EAMVOptimizer(config, seed=77).optimize(blocks)
        reference = results[KERNEL_NAMES[0]]
        for kernel in KERNEL_NAMES[1:]:
            result = results[kernel]
            assert result.mean_rate == reference.mean_rate
            assert result.best_rate == reference.best_rate
            for ours, theirs in zip(result.runs, reference.runs):
                assert ours.mv_set == theirs.mv_set


class TestWideBlockEndToEnd:
    """K = 96 compresses and round-trips through every kernel."""

    def test_wide_workload_spans_two_words(self):
        blocks = wide_block_test_set().blocks(WIDE_BLOCK_LENGTH)
        assert WIDE_BLOCK_SPEC.pattern_bits % WIDE_BLOCK_LENGTH == 0
        assert blocks.word_count == 2
        assert blocks.n_distinct > 1

    def test_compress_decompress_roundtrip_all_kernels(self):
        blocks = wide_block_test_set().blocks(WIDE_BLOCK_LENGTH)
        payloads = []
        for kernel in KERNEL_NAMES:
            config = CompressionConfig(
                block_length=WIDE_BLOCK_LENGTH,
                n_vectors=6,
                runs=1,
                kernel=kernel,
                ea=EAParameters(stagnation_limit=5, max_evaluations=80),
            )
            optimizer = EAMVOptimizer(config, seed=9)
            compressed = optimizer.compress_best(blocks)
            decoded = verify_roundtrip(compressed)
            assert decoded.blocks_decoded == blocks.n_blocks
            payloads.append(compressed.payload)
        # Seeded search + emission is byte-identical across kernels.
        assert all(payload == payloads[0] for payload in payloads[1:])

    def test_wide_rate_prices_like_compressor(self):
        blocks = wide_block_test_set().blocks(WIDE_BLOCK_LENGTH)
        rng = np.random.default_rng(2)
        genomes = rng.integers(
            0, 3, size=(6, 4 * WIDE_BLOCK_LENGTH), dtype=np.int8
        )
        genomes[:, -WIDE_BLOCK_LENGTH:] = 2  # all-U tail: always coverable
        from repro.core.matching import MVSet

        for name in KERNEL_NAMES:
            fitness = BatchCompressionRateFitness(
                blocks,
                n_vectors=4,
                block_length=WIDE_BLOCK_LENGTH,
                kernel=name,
            )
            rates = fitness.evaluate_batch(genomes)
            for row in range(len(genomes)):
                mv_set = MVSet.from_genome(genomes[row], WIDE_BLOCK_LENGTH)
                expected = compress_blocks(blocks, mv_set).rate
                assert rates[row] == pytest.approx(expected)

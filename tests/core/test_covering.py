"""Unit and property tests for the covering stage (paper Section 3.2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.blocks import BlockSet
from repro.core.covering import UncoverableError, cover
from repro.core.matching import MVSet

from ..conftest import mv_strings, trit_strings


class TestCoverBasics:
    def test_first_match_by_fewest_us(self):
        # 111 matches both "111" and "UUU"; the specific MV must win.
        blocks = BlockSet.from_string("111", 3)
        result = cover(blocks, MVSet.from_strings(["UUU", "111"]))
        assert result.frequency_map() == {1: 1}

    def test_tie_broken_by_declaration_order(self):
        # Both MVs fully specified and matching (block is all X).
        blocks = BlockSet.from_string("XXX", 3)
        result = cover(blocks, MVSet.from_strings(["000", "111"]))
        assert result.frequency_map() == {0: 1}

    def test_frequencies_weighted_by_multiplicity(self):
        blocks = BlockSet.from_string("111 111 000", 3)
        result = cover(blocks, MVSet.from_strings(["111", "000"]))
        assert result.frequency_map() == {0: 2, 1: 1}

    def test_uncovered_counted(self):
        blocks = BlockSet.from_string("111 010", 3)
        result = cover(blocks, MVSet.from_strings(["111"]))
        assert result.uncovered == 1
        assert not result.is_complete

    def test_require_complete_raises(self):
        blocks = BlockSet.from_string("010", 3)
        with pytest.raises(UncoverableError):
            cover(blocks, MVSet.from_strings(["111"]), require_complete=True)

    def test_all_u_covers_everything(self):
        blocks = BlockSet.from_string("010 111 XXX 0X1", 3)
        result = cover(blocks, MVSet.from_strings(["UUU"]))
        assert result.is_complete
        assert result.frequency_map() == {0: 4}

    def test_length_mismatch(self):
        blocks = BlockSet.from_string("0101", 4)
        with pytest.raises(ValueError):
            cover(blocks, MVSet.from_strings(["111"]))

    def test_covering_order_exposed(self):
        blocks = BlockSet.from_string("111", 3)
        result = cover(blocks, MVSet.from_strings(["UUU", "1U1", "111"]))
        assert result.covering_order == (2, 1, 0)


class TestCoverProperties:
    @given(
        trit_strings(min_size=1, max_size=150),
        st.lists(mv_strings(5), min_size=1, max_size=8),
    )
    def test_frequencies_account_for_every_covered_block(self, text, mv_texts):
        blocks = BlockSet.from_string(text, 5)
        mv_set = MVSet.from_strings(mv_texts)
        result = cover(blocks, mv_set)
        assert result.frequencies.sum() + result.uncovered == blocks.n_blocks

    @given(
        trit_strings(min_size=1, max_size=150),
        st.lists(mv_strings(5), min_size=1, max_size=8),
    )
    def test_assignment_consistent_with_matching(self, text, mv_texts):
        """Every assigned MV actually matches its block, and unassigned
        blocks match no MV at all."""
        blocks = BlockSet.from_string(text, 5)
        mv_set = MVSet.from_strings(mv_texts)
        result = cover(blocks, mv_set)
        for distinct_index in range(blocks.n_distinct):
            ones = int(blocks.ones[distinct_index])
            zeros = int(blocks.zeros[distinct_index])
            assigned = int(result.assignment[distinct_index])
            if assigned >= 0:
                assert mv_set[assigned].matches_masks(ones, zeros)
            else:
                assert not any(mv.matches_masks(ones, zeros) for mv in mv_set)

    @given(
        trit_strings(min_size=1, max_size=150),
        st.lists(mv_strings(5), min_size=1, max_size=8),
    )
    def test_assigned_mv_has_minimal_nu_among_matches(self, text, mv_texts):
        """The covering rule: first match in increasing-NU order."""
        blocks = BlockSet.from_string(text, 5)
        mv_set = MVSet.from_strings(mv_texts)
        result = cover(blocks, mv_set)
        for distinct_index in range(blocks.n_distinct):
            assigned = int(result.assignment[distinct_index])
            if assigned < 0:
                continue
            ones = int(blocks.ones[distinct_index])
            zeros = int(blocks.zeros[distinct_index])
            matching_nus = [
                mv.n_unspecified for mv in mv_set if mv.matches_masks(ones, zeros)
            ]
            assert mv_set[assigned].n_unspecified == min(matching_nus)

    @given(trit_strings(min_size=1, max_size=100))
    def test_adding_all_u_makes_covering_complete(self, text):
        blocks = BlockSet.from_string(text, 4)
        mv_set = MVSet.from_strings(["1010", "0101", "UUUU"])
        assert cover(blocks, mv_set).is_complete

"""Tests for the Golomb/FDR run-length compression baselines."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.baselines import compress_fdr, compress_golomb
from repro.core.trits import parse_trits
from repro.testdata.synthetic import SyntheticSpec, synthetic_test_set


def trit_array(text: str) -> np.ndarray:
    return np.asarray(parse_trits(text), dtype=np.int8)


class TestGolombBaseline:
    def test_x_rich_data_compresses(self):
        trits = trit_array("X" * 90 + "1" + "X" * 60 + "1" + "X" * 40)
        result = compress_golomb(trits)
        assert result.rate > 50.0
        assert result.method == "golomb"

    def test_parameter_auto_selection(self):
        trits = trit_array(("X" * 30 + "1") * 8)
        auto = compress_golomb(trits)
        worst = compress_golomb(trits, parameter=1)
        assert auto.compressed_bits <= worst.compressed_bits
        assert auto.parameter is not None

    def test_dense_alternating_data_expands(self):
        trits = trit_array("10" * 50)
        result = compress_golomb(trits, parameter=4)
        assert result.rate < 0  # runs of length 0/1 expand under m=4

    def test_original_bits_counts_unfilled_string(self):
        trits = trit_array("1XX0")
        assert compress_golomb(trits).original_bits == 4


class TestFDRBaseline:
    def test_x_rich_data_compresses(self):
        trits = trit_array("X" * 90 + "1" + "X" * 60 + "1" + "X" * 40)
        result = compress_fdr(trits)
        assert result.rate > 50.0
        assert result.method == "fdr"

    def test_zero_fill_convention(self):
        """0 and X produce identical streams (both fill to 0)."""
        specified = trit_array("000100")
        with_x = trit_array("XXX1XX")
        assert compress_fdr(specified).encoded == compress_fdr(with_x).encoded

    @given(st.text(alphabet="01X", min_size=1, max_size=300))
    def test_rate_definition_consistent(self, text):
        trits = trit_array(text)
        result = compress_fdr(trits)
        expected = 100.0 * (len(text) - result.compressed_bits) / len(text)
        assert result.rate == pytest.approx(expected)


class TestBaselinesOnSyntheticSets:
    def test_methods_ranked_sanely_on_x_rich_set(self):
        """On an X-rich calibrated-style set all baselines compress,
        and the run-length family behaves differently from 9C (this is
        why the paper compares across families)."""
        test_set = synthetic_test_set(
            SyntheticSpec(
                "rank", n_patterns=80, pattern_bits=48,
                care_density=0.25, seed=5,
            )
        )
        flat = test_set.flatten()
        golomb = compress_golomb(flat)
        fdr = compress_fdr(flat)
        assert golomb.rate > 0
        assert fdr.rate > 0

    def test_fdr_adapts_better_than_fixed_small_m(self):
        """FDR's variable groups track mixed run lengths better than a
        deliberately bad fixed Golomb parameter."""
        test_set = synthetic_test_set(
            SyntheticSpec(
                "mix", n_patterns=60, pattern_bits=40,
                care_density=0.30, seed=8,
            )
        )
        flat = test_set.flatten()
        fdr = compress_fdr(flat)
        golomb_m1 = compress_golomb(flat, parameter=1)
        assert fdr.compressed_bits <= golomb_m1.compressed_bits

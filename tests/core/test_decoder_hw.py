"""Tests for the decoder hardware model."""


import numpy as np

from repro.core.blocks import BlockSet
from repro.core.compressor import compress_blocks
from repro.core.decoder_hw import (
    decoder_area_units_batch,
    decoder_model,
    decoder_model_for,
    test_application_cycles as application_cycles,
    test_application_cycles_batch as application_cycles_batch,
)
from repro.core.encoding import EncodingStrategy, build_encoding_table
from repro.core.fitness import INVALID_FITNESS, BatchCompressionRateFitness
from repro.core.matching import MVSet
from repro.core.nine_c import NINE_C_CODEWORDS, nine_c_mv_set
from repro.core.trits import DC
from repro.testdata.synthetic import SyntheticSpec, synthetic_test_set


def nine_c_table(frequencies=None):
    mvs = nine_c_mv_set(8)
    freqs = frequencies or {i: 1 for i in range(9)}
    return mvs, build_encoding_table(
        mvs, freqs, EncodingStrategy.FIXED, fixed_codewords=NINE_C_CODEWORDS
    )


class TestDecoderModel:
    def test_nine_c_decoder_shape(self):
        mvs, table = nine_c_table()
        model = decoder_model(mvs, table)
        assert model.n_codewords == 9
        assert model.max_codeword_bits == 5
        # K=8 half-U vectors need a 4-fill counter; all-U needs 8.
        assert model.fill_counter_bits == 4  # ceil(log2(8+1)) = 4
        assert model.output_buffer_bits == 8

    def test_fsm_states_are_internal_nodes(self):
        # Code {0, 10, 11}: internal nodes = root + the '1' node = 2.
        mvs = MVSet.from_strings(["11", "00", "UU"])
        table = build_encoding_table(mvs, {0: 4, 1: 2, 2: 1})
        model = decoder_model(mvs, table)
        assert model.fsm_states == 2

    def test_no_fills_means_no_counter(self):
        mvs = MVSet.from_strings(["11", "00"])
        table = build_encoding_table(mvs, {0: 1, 1: 1})
        assert decoder_model(mvs, table).fill_counter_bits == 0

    def test_table_bits_formula(self):
        mvs = MVSet.from_strings(["11", "00"])
        table = build_encoding_table(mvs, {0: 1, 1: 1})
        model = decoder_model(mvs, table)
        # 2 codewords x (1 bit + 2*2 trit bits) = 10.
        assert model.table_bits == 10

    def test_empty_table(self):
        mvs = MVSet.from_strings(["11"])
        table = build_encoding_table(mvs, {})
        model = decoder_model(mvs, table)
        assert model.n_codewords == 0
        assert model.fsm_states == 0

    def test_state_register_width(self):
        mvs, table = nine_c_table()
        model = decoder_model(mvs, table)
        assert 2 ** model.state_register_bits >= model.fsm_states

    def test_summary_string(self):
        mvs, table = nine_c_table()
        text = decoder_model(mvs, table).summary()
        assert "9 codewords" in text

    def test_convenience_on_compressed_set(self):
        blocks = BlockSet.from_string("111 000 111 0X1", 3)
        compressed = compress_blocks(
            blocks, MVSet.from_strings(["111", "000", "UUU"])
        )
        model = decoder_model_for(compressed)
        assert model.output_buffer_bits == 3
        assert model.n_codewords >= 2


def _pinned_seeded_compression():
    """A fixed seeded test set compressed with a fixed random MV set."""
    test_set = synthetic_test_set(
        SyntheticSpec(
            "golden", n_patterns=20, pattern_bits=24, care_density=0.5, seed=7
        )
    )
    blocks = test_set.blocks(4)
    rng = np.random.default_rng(11)
    genome = rng.integers(0, 3, 8 * 4)
    genome[-4:] = DC  # the all-U MV guarantees coverage
    return blocks, genome, compress_blocks(blocks, MVSet.from_genome(genome, 4))


class TestAreaAndTimeGoldenValues:
    """Pinned objective values on a seeded compression.

    These exact numbers back the byte-reproducibility contract of the
    multi-objective mode: the decoder-model objectives may never drift.
    """

    def test_golden_model_fields(self):
        _, _, compressed = _pinned_seeded_compression()
        model = decoder_model_for(compressed)
        assert model.n_codewords == 7
        assert model.fsm_states == 6
        assert model.max_codeword_bits == 4
        assert model.fill_counter_bits == 3
        assert model.output_buffer_bits == 4
        assert model.table_bits == 77

    def test_golden_area_units(self):
        _, _, compressed = _pinned_seeded_compression()
        # 3 state bits + 3 fill-counter bits + 4 buffer bits + 77 table.
        assert decoder_model_for(compressed).area_units == 87

    def test_golden_application_cycles(self):
        _, _, compressed = _pinned_seeded_compression()
        frequencies = compressed.covering.frequency_map()
        lengths = {
            i: len(word) for i, word in compressed.table.codewords.items()
        }
        assert application_cycles(frequencies, lengths, 4) == 775


class TestDecoderAreaUnitsBatch:
    def test_more_codewords_never_shrink_area(self):
        # Grow the table one codeword (of fixed 3-bit length) at a time
        # while everything else stays put: area must be non-decreasing.
        n = np.arange(0, 64, dtype=np.int64)
        areas = decoder_area_units_batch(n, 3 * n, np.full_like(n, 2), 4)
        assert (np.diff(areas) >= 0).all()

    def test_matches_scalar_model_rows(self):
        rng = np.random.default_rng(5)
        for _ in range(200):
            n = int(rng.integers(0, 20))
            lengths = rng.integers(1, 9, n)
            max_fills = int(rng.integers(0, 12))
            block_length = int(rng.integers(1, 16))
            batched = decoder_area_units_batch(
                np.asarray([n]),
                np.asarray([lengths.sum()]),
                np.asarray([max_fills]),
                block_length,
            )
            # Scalar reference via the closed forms decoder_model uses:
            # full Huffman trees have n-1 internal nodes (1 when n==1).
            fsm_states = 0 if n == 0 else (1 if n == 1 else n - 1)
            state_bits = max(1, (max(fsm_states, 2) - 1).bit_length())
            fill_bits = 0 if max_fills == 0 else max(1, max_fills.bit_length())
            table_bits = int(lengths.sum()) + 2 * block_length * n
            assert batched[0] == (
                state_bits + fill_bits + block_length + table_bits
            )

    def test_cycles_batch_matches_scalar(self):
        frequencies = {0: 5, 1: 3, 2: 2}
        lengths = {0: 1, 1: 2, 2: 2}
        scalar = application_cycles(frequencies, lengths, 4)
        coded_bits = sum(frequencies[i] * lengths[i] for i in frequencies)
        batched = application_cycles_batch(
            np.asarray([coded_bits]), np.asarray([sum(frequencies.values())]), 4
        )
        assert batched[0] == scalar == 15 + 4 * 10


class TestObjectiveAdapterParity:
    """evaluate_objectives rows == the scalar compress-and-model path."""

    def test_batch_adapter_matches_scalar_path(self):
        test_set = synthetic_test_set(
            SyntheticSpec(
                "parity", n_patterns=24, pattern_bits=24,
                care_density=0.5, seed=3,
            )
        )
        blocks = test_set.blocks(4)
        fitness = BatchCompressionRateFitness(
            blocks, n_vectors=8, block_length=4
        )
        rng = np.random.default_rng(17)
        genomes = rng.integers(0, 3, (40, 8 * 4))
        genomes[:, -4:] = DC  # pin an all-U MV so every row is valid
        objectives = fitness.evaluate_objectives(genomes)
        rates = fitness.evaluate_batch(genomes)
        assert np.array_equal(objectives[:, 0], rates)
        for row, genome in enumerate(genomes):
            compressed = compress_blocks(blocks, MVSet.from_genome(genome, 4))
            model = decoder_model_for(compressed)
            frequencies = compressed.covering.frequency_map()
            lengths = {
                i: len(word) for i, word in compressed.table.codewords.items()
            }
            assert objectives[row, 1] == model.area_units
            assert objectives[row, 2] == application_cycles(
                frequencies, lengths, 4
            )

    def test_uncoverable_rows_are_invalid(self):
        blocks = BlockSet.from_string("111 000", 3)
        fitness = BatchCompressionRateFitness(
            blocks, n_vectors=2, block_length=3
        )
        # Two identical fully-specified MVs can never cover both blocks.
        genome = MVSet.from_strings(["111", "111"]).to_genome()
        objectives = fitness.evaluate_objectives(np.asarray([genome]))
        assert objectives[0, 0] == INVALID_FITNESS
        assert np.isinf(objectives[0, 1]) and np.isinf(objectives[0, 2])

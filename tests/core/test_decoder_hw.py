"""Tests for the decoder hardware model."""


from repro.core.blocks import BlockSet
from repro.core.compressor import compress_blocks
from repro.core.decoder_hw import decoder_model, decoder_model_for
from repro.core.encoding import EncodingStrategy, build_encoding_table
from repro.core.matching import MVSet
from repro.core.nine_c import NINE_C_CODEWORDS, nine_c_mv_set


def nine_c_table(frequencies=None):
    mvs = nine_c_mv_set(8)
    freqs = frequencies or {i: 1 for i in range(9)}
    return mvs, build_encoding_table(
        mvs, freqs, EncodingStrategy.FIXED, fixed_codewords=NINE_C_CODEWORDS
    )


class TestDecoderModel:
    def test_nine_c_decoder_shape(self):
        mvs, table = nine_c_table()
        model = decoder_model(mvs, table)
        assert model.n_codewords == 9
        assert model.max_codeword_bits == 5
        # K=8 half-U vectors need a 4-fill counter; all-U needs 8.
        assert model.fill_counter_bits == 4  # ceil(log2(8+1)) = 4
        assert model.output_buffer_bits == 8

    def test_fsm_states_are_internal_nodes(self):
        # Code {0, 10, 11}: internal nodes = root + the '1' node = 2.
        mvs = MVSet.from_strings(["11", "00", "UU"])
        table = build_encoding_table(mvs, {0: 4, 1: 2, 2: 1})
        model = decoder_model(mvs, table)
        assert model.fsm_states == 2

    def test_no_fills_means_no_counter(self):
        mvs = MVSet.from_strings(["11", "00"])
        table = build_encoding_table(mvs, {0: 1, 1: 1})
        assert decoder_model(mvs, table).fill_counter_bits == 0

    def test_table_bits_formula(self):
        mvs = MVSet.from_strings(["11", "00"])
        table = build_encoding_table(mvs, {0: 1, 1: 1})
        model = decoder_model(mvs, table)
        # 2 codewords x (1 bit + 2*2 trit bits) = 10.
        assert model.table_bits == 10

    def test_empty_table(self):
        mvs = MVSet.from_strings(["11"])
        table = build_encoding_table(mvs, {})
        model = decoder_model(mvs, table)
        assert model.n_codewords == 0
        assert model.fsm_states == 0

    def test_state_register_width(self):
        mvs, table = nine_c_table()
        model = decoder_model(mvs, table)
        assert 2 ** model.state_register_bits >= model.fsm_states

    def test_summary_string(self):
        mvs, table = nine_c_table()
        text = decoder_model(mvs, table).summary()
        assert "9 codewords" in text

    def test_convenience_on_compressed_set(self):
        blocks = BlockSet.from_string("111 000 111 0X1", 3)
        compressed = compress_blocks(
            blocks, MVSet.from_strings(["111", "000", "UUU"])
        )
        model = decoder_model_for(compressed)
        assert model.output_buffer_bits == 3
        assert model.n_codewords >= 2

"""Unit and property tests for the decoder model and losslessness."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.blocks import BlockSet
from repro.core.compressor import compress_blocks
from repro.core.decompressor import decompress, verify_roundtrip
from repro.core.encoding import EncodingStrategy
from repro.core.matching import MVSet
from repro.core.nine_c import compress_nine_c

from ..conftest import mv_strings, trit_strings


class TestDecompressBasics:
    def test_fully_specified_roundtrip(self):
        blocks = BlockSet.from_string("111000110", 3)
        result = compress_blocks(
            blocks, MVSet.from_strings(["111", "000", "UUU"])
        )
        assert decompress(result).bits == "111000110"

    def test_dont_cares_get_fill_default(self):
        blocks = BlockSet.from_string("1X", 2)
        result = compress_blocks(blocks, MVSet.from_strings(["UU"]))
        assert decompress(result).bits == "10"

    def test_dont_cares_get_fill_default_one(self):
        blocks = BlockSet.from_string("1X", 2)
        result = compress_blocks(
            blocks, MVSet.from_strings(["UU"]), fill_default=1
        )
        assert decompress(result).bits == "11"

    def test_block_accessor(self):
        blocks = BlockSet.from_string("111000", 3)
        result = compress_blocks(blocks, MVSet.from_strings(["111", "000"]))
        decoded = decompress(result)
        assert decoded.block(0) == "111"
        assert decoded.block(1) == "000"

    def test_padding_blocks_also_decoded(self):
        blocks = BlockSet.from_string("11111", 3)  # padded to 6
        result = compress_blocks(blocks, MVSet.from_strings(["111", "UUU"]))
        decoded = decompress(result)
        assert decoded.blocks_decoded == 2
        assert len(decoded.bits) == 6


class TestVerifyRoundtrip:
    def test_accepts_valid_stream(self):
        blocks = BlockSet.from_string("110X 0011 XXXX 1100", 4)
        result = compress_blocks(
            blocks, MVSet.from_strings(["1100", "0011", "UUUU"])
        )
        decoded = verify_roundtrip(result)
        assert decoded.blocks_decoded == 4

    def test_specified_bits_reproduced_exactly(self):
        text = "101 X01 1XX"
        blocks = BlockSet.from_string(text, 3)
        result = compress_blocks(blocks, MVSet.from_strings(["101", "UUU"]))
        decoded = verify_roundtrip(result)
        assert decoded.bits[0:3] == "101"
        assert decoded.bits[4:6] == "01"  # specified suffix of block 2
        assert decoded.bits[3] in "01"  # filled don't-care


class TestRoundtripProperties:
    @settings(max_examples=40)
    @given(
        trit_strings(min_size=1, max_size=160),
        st.lists(mv_strings(4), min_size=0, max_size=7),
    )
    def test_huffman_roundtrip_lossless(self, text, mv_texts):
        blocks = BlockSet.from_string(text, 4)
        mv_set = MVSet.from_strings(mv_texts + ["UUUU"])
        result = compress_blocks(blocks, mv_set)
        verify_roundtrip(result)

    @settings(max_examples=40)
    @given(
        trit_strings(min_size=1, max_size=160),
        st.lists(mv_strings(4), min_size=0, max_size=7),
    )
    def test_subsumption_roundtrip_lossless(self, text, mv_texts):
        """Subsumption merges re-route blocks to wider MVs; the stream
        must still reproduce every specified bit."""
        blocks = BlockSet.from_string(text, 4)
        mv_set = MVSet.from_strings(mv_texts + ["UUUU"])
        result = compress_blocks(blocks, mv_set, EncodingStrategy.HUFFMAN_SUBSUME)
        verify_roundtrip(result)

    @settings(max_examples=30)
    @given(trit_strings(min_size=1, max_size=200))
    def test_nine_c_roundtrip_lossless(self, text):
        blocks = BlockSet.from_string(text, 8)
        for use_huffman in (False, True):
            verify_roundtrip(compress_nine_c(blocks, use_huffman=use_huffman))

    @settings(max_examples=30)
    @given(trit_strings(min_size=1, max_size=120), st.integers(0, 1))
    def test_decoded_length_is_padded_length(self, text, fill):
        blocks = BlockSet.from_string(text, 5)
        result = compress_blocks(
            blocks, MVSet.from_strings(["UUUUU"]), fill_default=fill
        )
        assert len(decompress(result).bits) == blocks.padded_bits

"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.core.blocks import BlockSet


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic RNG for tests that need randomness."""
    return np.random.default_rng(12345)


@pytest.fixture(autouse=True)
def _reset_active_tuning_profile():
    """Keep the process-wide tuning profile from leaking across tests.

    CLI `--profile` (and tests exercising it) install an active
    profile; thresholds are semantically inert, but a leaked profile
    would silently change which code paths later tests exercise.
    """
    yield
    from repro.tuning.profile import set_active_profile

    set_active_profile(None)


def trit_strings(min_size: int = 1, max_size: int = 200) -> st.SearchStrategy[str]:
    """Strategy producing 0/1/X test-set strings."""
    return st.text(alphabet="01X", min_size=min_size, max_size=max_size)


def mv_strings(length: int) -> st.SearchStrategy[str]:
    """Strategy producing fixed-length matching-vector strings."""
    return st.text(alphabet="01U", min_size=length, max_size=length)


def random_block_set(
    rng: np.random.Generator,
    n_bits: int,
    block_length: int,
    care_probability: float = 0.5,
    one_bias: float = 0.5,
) -> BlockSet:
    """Build a random block set with the given care-bit density."""
    care = rng.random(n_bits) < care_probability
    values = rng.random(n_bits) < one_bias
    trits = np.where(care, values.astype(np.int8), np.int8(2))
    return BlockSet.from_trit_array(trits.astype(np.int8), block_length)

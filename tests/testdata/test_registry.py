"""Tests for the transcribed paper tables."""

import numpy as np
import pytest

from repro.testdata.registry import (
    TABLE1_AVERAGES,
    TABLE1_STUCK_AT,
    TABLE2_AVERAGES,
    TABLE2_PATH_DELAY,
    PaperRow,
    row_by_name,
)


class TestTableShapes:
    def test_table1_has_39_rows(self):
        assert len(TABLE1_STUCK_AT) == 39

    def test_table2_has_29_rows(self):
        assert len(TABLE2_PATH_DELAY) == 29

    def test_sizes_sorted_ascending_table1(self):
        sizes = [row.test_set_bits for row in TABLE1_STUCK_AT]
        assert sizes == sorted(sizes)

    def test_sizes_sorted_ascending_table2(self):
        sizes = [row.test_set_bits for row in TABLE2_PATH_DELAY]
        assert sizes == sorted(sizes)

    def test_columns_table1(self):
        for row in TABLE1_STUCK_AT:
            assert set(row.published) == {"9C", "9C+HC", "EA", "EA-Best"}

    def test_columns_table2(self):
        for row in TABLE2_PATH_DELAY:
            assert set(row.published) == {"9C", "9C+HC", "EA1", "EA2"}


class TestSizesFactorExactly:
    """Every size divides by the pattern width — the cross-check that
    validates both the transcription and the input-width choices."""

    def test_table1_widths_divide_sizes(self):
        for row in TABLE1_STUCK_AT:
            assert row.test_set_bits % row.pattern_bits == 0
            assert row.n_patterns >= 1

    def test_table2_widths_divide_sizes(self):
        for row in TABLE2_PATH_DELAY:
            assert row.test_set_bits % row.pattern_bits == 0
            # Path-delay patterns are vector pairs: width is even.
            assert row.pattern_bits % 2 == 0

    def test_known_row_values(self):
        s349 = row_by_name(TABLE1_STUCK_AT, "s349")
        assert s349.test_set_bits == 624
        assert s349.n_patterns == 26
        assert s349.published["EA"] == 54.2

        s27 = row_by_name(TABLE2_PATH_DELAY, "s27")
        assert s27.test_set_bits == 448
        assert s27.pattern_bits == 14  # 2 x 7 inputs
        assert s27.published["9C"] == -5.0


class TestPublishedAverages:
    def test_table1_averages_match_rows(self):
        """The paper's last-line averages agree with its own rows."""
        for column, published in TABLE1_AVERAGES.items():
            computed = np.mean(
                [row.published[column] for row in TABLE1_STUCK_AT]
            )
            assert computed == pytest.approx(published, abs=0.06)

    def test_table2_averages_match_rows(self):
        for column, published in TABLE2_AVERAGES.items():
            computed = np.mean(
                [row.published[column] for row in TABLE2_PATH_DELAY]
            )
            assert computed == pytest.approx(published, abs=0.06)

    def test_paper_headline_ordering(self):
        """9C < 9C+HC < EA < EA-Best on the published averages."""
        assert (
            TABLE1_AVERAGES["9C"]
            < TABLE1_AVERAGES["9C+HC"]
            < TABLE1_AVERAGES["EA"]
            < TABLE1_AVERAGES["EA-Best"]
        )
        assert (
            TABLE2_AVERAGES["9C"]
            < TABLE2_AVERAGES["9C+HC"]
            < TABLE2_AVERAGES["EA1"]
            < TABLE2_AVERAGES["EA2"]
        )


class TestPaperRowValidation:
    def test_indivisible_size_rejected(self):
        with pytest.raises(ValueError):
            PaperRow("bad", 100, 7, {"9C": 0.0})

    def test_row_lookup_missing(self):
        with pytest.raises(KeyError):
            row_by_name(TABLE1_STUCK_AT, "c9999")

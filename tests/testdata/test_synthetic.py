"""Unit and property tests for the synthetic test-set generator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.trits import DC
from repro.testdata.synthetic import SyntheticSpec, synthetic_test_set


def spec(**overrides) -> SyntheticSpec:
    base = dict(
        name="t", n_patterns=40, pattern_bits=30, care_density=0.5, seed=1
    )
    base.update(overrides)
    return SyntheticSpec(**base)


class TestSpecValidation:
    def test_invalid_density(self):
        with pytest.raises(ValueError):
            spec(care_density=1.5)

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            spec(n_patterns=0)

    def test_invalid_bias(self):
        with pytest.raises(ValueError):
            spec(one_bias=-0.1)

    def test_with_care_density(self):
        updated = spec().with_care_density(0.2)
        assert updated.care_density == 0.2
        assert updated.seed == spec().seed

    def test_total_bits(self):
        assert spec().total_bits == 1200


class TestGeneration:
    def test_exact_care_density(self):
        """Gumbel top-k placement hits the requested count exactly."""
        ts = synthetic_test_set(spec(care_density=0.37))
        expected = round(0.37 * 1200) / 1200
        assert ts.care_density() == pytest.approx(expected)

    def test_deterministic_under_seed(self):
        first = synthetic_test_set(spec())
        second = synthetic_test_set(spec())
        assert first.to_string() == second.to_string()

    def test_different_seeds_differ(self):
        first = synthetic_test_set(spec(seed=1))
        second = synthetic_test_set(spec(seed=2))
        assert first.to_string() != second.to_string()

    def test_extreme_densities(self):
        all_x = synthetic_test_set(spec(care_density=0.0))
        assert all_x.care_density() == 0.0
        dense = synthetic_test_set(spec(care_density=1.0))
        assert dense.care_density() == 1.0

    def test_hot_columns_create_column_structure(self):
        """Some columns should be specified far more often than others."""
        ts = synthetic_test_set(
            spec(n_patterns=300, pattern_bits=50, care_density=0.3, seed=5)
        )
        column_care = (ts.patterns != DC).mean(axis=0)
        assert column_care.max() > 2.0 * column_care.mean()

    def test_compressible_structure(self):
        """The generated sets must repeat blocks (what real cubes do) —
        far fewer distinct blocks than a uniform random set."""
        structured = synthetic_test_set(
            spec(n_patterns=200, pattern_bits=64, care_density=0.3, seed=9)
        )
        rng = np.random.default_rng(9)
        uniform = np.where(
            rng.random((200, 64)) < 0.3,
            (rng.random((200, 64)) < 0.5).astype(np.int8),
            np.int8(DC),
        )
        distinct_structured = structured.blocks(8).n_distinct
        from repro.core.blocks import BlockSet

        distinct_uniform = BlockSet.from_trit_array(
            uniform.reshape(-1).astype(np.int8), 8
        ).n_distinct
        assert distinct_structured < distinct_uniform

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(5, 60),
        st.integers(5, 60),
        st.floats(0.05, 0.95),
        st.integers(0, 10_000),
    )
    def test_density_always_exact(self, t, n, density, seed):
        ts = synthetic_test_set(
            SyntheticSpec("p", t, n, care_density=density, seed=seed)
        )
        expected = round(density * t * n)
        assert int((ts.patterns != DC).sum()) == expected

"""Tests for don't-care fill strategies."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.trits import DC
from repro.testdata.fill import FILL_STRATEGIES, fill_test_set
from repro.testdata.test_set import TestSet


@pytest.fixture
def sparse_set() -> TestSet:
    return TestSet.from_strings("t", ["1XX0", "X1XX", "XXXX"])


class TestFillStrategies:
    def test_zero_fill(self, sparse_set):
        filled = fill_test_set(sparse_set, "zero")
        assert filled.pattern_string(0) == "1000"
        assert filled.pattern_string(2) == "0000"

    def test_one_fill(self, sparse_set):
        filled = fill_test_set(sparse_set, "one")
        assert filled.pattern_string(0) == "1110"

    def test_repeat_fill(self, sparse_set):
        filled = fill_test_set(sparse_set, "repeat")
        assert filled.pattern_string(0) == "1110"
        assert filled.pattern_string(1) == "0111"  # leading X defaults to 0

    def test_random_fill_deterministic(self, sparse_set):
        first = fill_test_set(sparse_set, "random", seed=3)
        second = fill_test_set(sparse_set, "random", seed=3)
        assert first.to_string() == second.to_string()

    def test_random_fill_seed_matters(self):
        wide = TestSet.from_strings("t", ["X" * 64])
        assert (
            fill_test_set(wide, "random", seed=1).to_string()
            != fill_test_set(wide, "random", seed=2).to_string()
        )

    def test_unknown_strategy(self, sparse_set):
        with pytest.raises(ValueError):
            fill_test_set(sparse_set, "adjacent")

    @pytest.mark.parametrize("strategy", FILL_STRATEGIES)
    def test_no_x_left_and_specified_bits_kept(self, sparse_set, strategy):
        filled = fill_test_set(sparse_set, strategy)
        assert filled.care_density() == 1.0
        original = sparse_set.patterns
        specified = original != DC
        assert (filled.patterns[specified] == original[specified]).all()

    @given(st.lists(st.text(alphabet="01X", min_size=5, max_size=5),
                    min_size=1, max_size=10))
    def test_shape_preserved(self, rows):
        ts = TestSet.from_strings("t", rows)
        for strategy in FILL_STRATEGIES:
            filled = fill_test_set(ts, strategy)
            assert filled.patterns.shape == ts.patterns.shape


class TestFillHurtsCompression:
    def test_x_rich_beats_any_fill_under_nine_c(self):
        """The paper's premise, quantified: compressing cubes beats
        compressing filled vectors for every fill policy."""
        from repro.core.nine_c import compress_nine_c
        from repro.testdata.synthetic import SyntheticSpec, synthetic_test_set

        cubes = synthetic_test_set(
            SyntheticSpec(
                "premise", n_patterns=60, pattern_bits=48,
                care_density=0.35, seed=4,
            )
        )
        unfilled_rate = compress_nine_c(cubes.blocks(8)).rate
        for strategy in FILL_STRATEGIES:
            filled = fill_test_set(cubes, strategy, seed=9)
            filled_rate = compress_nine_c(filled.blocks(8)).rate
            assert unfilled_rate >= filled_rate - 1e-9, strategy

"""Unit tests for the TestSet container."""

import numpy as np
import pytest

from repro.core.trits import DC
from repro.testdata.test_set import TestSet


class TestConstruction:
    def test_from_strings(self):
        ts = TestSet.from_strings("t", ["01X", "X10"])
        assert ts.n_patterns == 2
        assert ts.n_inputs == 3
        assert ts.total_bits == 6

    def test_from_strings_width_mismatch(self):
        with pytest.raises(ValueError):
            TestSet.from_strings("t", ["01", "011"])

    def test_from_strings_empty(self):
        with pytest.raises(ValueError):
            TestSet.from_strings("t", [])

    def test_from_cubes(self):
        ts = TestSet.from_cubes(
            "t", [{"a": 1}, {"b": 0, "a": 0}], input_order=["a", "b"]
        )
        assert ts.pattern_string(0) == "1X"
        assert ts.pattern_string(1) == "00"

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            TestSet("t", np.asarray([[0, 3]], dtype=np.int8))

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            TestSet("t", np.zeros(5, dtype=np.int8))


class TestStatistics:
    def test_densities(self):
        ts = TestSet.from_strings("t", ["01XX", "XXXX"])
        assert ts.care_density() == pytest.approx(0.25)
        assert ts.x_density() == pytest.approx(0.75)

    def test_to_string_row_major(self):
        ts = TestSet.from_strings("t", ["01X", "110"])
        assert ts.to_string() == "01X110"

    def test_flatten_matches_to_string(self):
        ts = TestSet.from_strings("t", ["0X1", "1X0"])
        flat = ts.flatten()
        assert flat.tolist() == [0, DC, 1, 1, DC, 0]


class TestBlocks:
    def test_blocks_partition(self):
        ts = TestSet.from_strings("t", ["0101", "1111"])
        blocks = ts.blocks(4)
        assert blocks.n_blocks == 2
        assert blocks.original_bits == 8

    def test_blocks_cross_pattern_boundaries(self):
        """The paper's string view: blocks may straddle patterns."""
        ts = TestSet.from_strings("t", ["011", "100"])
        blocks = ts.blocks(2)
        assert blocks.n_blocks == 3
        assert list(blocks.iter_block_strings()) == ["01", "11", "00"]

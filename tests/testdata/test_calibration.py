"""Tests for the 9C-anchored calibration."""

import pytest

from repro.testdata.calibration import calibrate_spec, nine_c_rate
from repro.testdata.registry import TABLE1_STUCK_AT, row_by_name
from repro.testdata.synthetic import SyntheticSpec, synthetic_test_set


def spec_for(circuit: str, seed: int = 11) -> SyntheticSpec:
    row = row_by_name(TABLE1_STUCK_AT, circuit)
    return SyntheticSpec(
        name=row.circuit,
        n_patterns=row.n_patterns,
        pattern_bits=row.pattern_bits,
        care_density=0.5,
        seed=seed,
    )


class TestNineCRate:
    def test_all_x_compresses_extremely_well(self):
        ts = synthetic_test_set(spec_for("s349").with_care_density(0.0))
        assert nine_c_rate(ts) > 80.0

    def test_dense_random_compresses_poorly(self):
        ts = synthetic_test_set(
            spec_for("s349").with_care_density(0.98)
        )
        assert nine_c_rate(ts) < 15.0

    def test_monotone_in_care_density(self):
        """The property bisection relies on (checked coarsely)."""
        rates = [
            nine_c_rate(
                synthetic_test_set(spec_for("s953").with_care_density(d))
            )
            for d in (0.1, 0.3, 0.5, 0.7, 0.9)
        ]
        assert all(a >= b - 1.0 for a, b in zip(rates, rates[1:]))


class TestCalibrateSpec:
    @pytest.mark.parametrize("circuit", ["s349", "s386", "c6288", "s953"])
    def test_hits_published_target(self, circuit):
        row = row_by_name(TABLE1_STUCK_AT, circuit)
        result = calibrate_spec(spec_for(circuit), row.published["9C"])
        assert result.anchor_error <= 1.0

    def test_negative_target(self):
        """c1908's published 9C rate is -2.0%: the generator must reach
        data that 9C *expands*."""
        row = row_by_name(TABLE1_STUCK_AT, "c1908")
        result = calibrate_spec(spec_for("c1908"), row.published["9C"])
        assert result.anchor_error <= 1.0
        assert result.achieved_nine_c_rate < 0

    def test_unreachable_target_returns_endpoint(self):
        result = calibrate_spec(spec_for("s349"), target_rate=99.9)
        # Best effort: lowest care density (highest rate) endpoint.
        assert result.spec.care_density <= 0.01
        assert result.anchor_error > 0

    def test_calibrated_test_set_has_right_size(self):
        row = row_by_name(TABLE1_STUCK_AT, "s349")
        result = calibrate_spec(spec_for("s349"), row.published["9C"])
        assert result.test_set.total_bits == row.test_set_bits

    def test_deterministic(self):
        row = row_by_name(TABLE1_STUCK_AT, "s349")
        first = calibrate_spec(spec_for("s349"), row.published["9C"])
        second = calibrate_spec(spec_for("s349"), row.published["9C"])
        assert first.spec.care_density == second.spec.care_density
        assert first.test_set.to_string() == second.test_set.to_string()

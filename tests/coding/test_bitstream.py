"""Unit and property tests for the bit-level I/O layer."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.coding.bitstream import (
    BitReader,
    BitWriter,
    bits_from_string,
    bits_to_string,
)


class TestBitStringHelpers:
    def test_parse_simple(self):
        assert bits_from_string("0110") == [0, 1, 1, 0]

    def test_parse_ignores_grouping(self):
        assert bits_from_string("01 10_1") == [0, 1, 1, 0, 1]

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            bits_from_string("012")

    def test_format(self):
        assert bits_to_string([1, 0, 0, 1]) == "1001"

    def test_format_rejects_non_bits(self):
        with pytest.raises(ValueError):
            bits_to_string([0, 2])


class TestBitWriter:
    def test_empty_writer(self):
        writer = BitWriter()
        assert writer.bit_length == 0
        assert writer.getvalue() == b""

    def test_single_one_is_msb(self):
        writer = BitWriter()
        writer.write_bit(1)
        assert writer.getvalue() == b"\x80"

    def test_eight_bits_pack_one_byte(self):
        writer = BitWriter()
        writer.write_bitstring("10110001")
        assert writer.getvalue() == bytes([0b10110001])

    def test_partial_byte_zero_padded(self):
        writer = BitWriter()
        writer.write_bitstring("111")
        assert writer.getvalue() == bytes([0b11100000])
        assert writer.bit_length == 3

    def test_rejects_invalid_bit(self):
        with pytest.raises(ValueError):
            BitWriter().write_bit(2)

    def test_iteration_matches_writes(self):
        writer = BitWriter()
        writer.write_bitstring("1011001")
        assert list(writer) == [1, 0, 1, 1, 0, 0, 1]

    def test_len_is_bit_count(self):
        writer = BitWriter()
        writer.write_bitstring("10101")
        assert len(writer) == 5


class TestBitReader:
    def test_read_back_in_order(self):
        writer = BitWriter()
        writer.write_bitstring("1100101")
        reader = BitReader.from_writer(writer)
        assert reader.read_bits(7) == [1, 1, 0, 0, 1, 0, 1]

    def test_exhaustion_raises(self):
        reader = BitReader.from_bitstring("1")
        reader.read_bit()
        with pytest.raises(EOFError):
            reader.read_bit()

    def test_remaining_and_position(self):
        reader = BitReader.from_bitstring("10101")
        reader.read_bits(2)
        assert reader.position == 2
        assert reader.remaining == 3
        assert not reader.exhausted

    def test_bit_length_validation(self):
        with pytest.raises(ValueError):
            BitReader(b"\x00", 9)

    def test_negative_count_rejected(self):
        reader = BitReader.from_bitstring("10")
        with pytest.raises(ValueError):
            reader.read_bits(-1)

    def test_default_bit_length_is_all_bytes(self):
        reader = BitReader(b"\xff")
        assert reader.bit_length == 8


class TestRoundTripProperties:
    @given(st.lists(st.integers(min_value=0, max_value=1), max_size=500))
    def test_writer_reader_roundtrip(self, bits):
        writer = BitWriter()
        writer.write_bits(bits)
        reader = BitReader.from_writer(writer)
        assert reader.read_bits(len(bits)) == bits
        assert reader.exhausted

    @given(st.text(alphabet="01", max_size=300))
    def test_bitstring_roundtrip(self, text):
        writer = BitWriter()
        writer.write_bitstring(text)
        assert writer.to_bitstring() == text

    @given(st.lists(st.integers(min_value=0, max_value=1), max_size=200))
    def test_byte_packing_length(self, bits):
        writer = BitWriter()
        writer.write_bits(bits)
        assert len(writer.getvalue()) == (len(bits) + 7) // 8

"""Unit and property tests for the Golomb and FDR run-length codes."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.coding.fdr import fdr_decode, fdr_encode, fdr_encode_run, fdr_group
from repro.coding.golomb import (
    best_golomb_parameter,
    golomb_decode,
    golomb_encode,
    golomb_encode_run,
    runs_of_zeros,
)


class TestRunsOfZeros:
    def test_basic(self):
        assert runs_of_zeros([0, 0, 1, 0, 1, 1]) == ([2, 1, 0], False)

    def test_trailing_zeros(self):
        assert runs_of_zeros([1, 0, 0]) == ([0, 2], True)

    def test_empty(self):
        assert runs_of_zeros([]) == ([], False)

    def test_all_zeros(self):
        assert runs_of_zeros([0, 0, 0]) == ([3], True)

    def test_invalid_bit(self):
        with pytest.raises(ValueError):
            runs_of_zeros([0, 2])


class TestGolomb:
    def test_known_codewords_m4(self):
        # l=5, m=4: q=1, r=1 -> '1' + '0' + '01'
        assert golomb_encode_run(5, 4) == "1001"
        assert golomb_encode_run(0, 4) == "000"

    def test_m1_is_unary(self):
        assert golomb_encode_run(3, 1) == "1110"

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            golomb_encode_run(3, 3)

    def test_negative_run_rejected(self):
        with pytest.raises(ValueError):
            golomb_encode_run(-1, 2)

    def test_truncated_code_rejected(self):
        with pytest.raises(ValueError):
            golomb_decode("11", 2)  # no separator

    @given(
        st.lists(st.integers(0, 500), max_size=40),
        st.sampled_from([1, 2, 4, 8, 16]),
    )
    def test_roundtrip(self, runs, m):
        assert golomb_decode(golomb_encode(runs, m), m) == runs

    def test_best_parameter_tracks_run_scale(self):
        assert best_golomb_parameter([1, 0, 2, 1]) <= 2
        assert best_golomb_parameter([200, 180, 220]) >= 32

    def test_best_parameter_empty(self):
        assert best_golomb_parameter([]) == 1


class TestFDR:
    def test_group_boundaries(self):
        assert fdr_group(0) == 1
        assert fdr_group(1) == 1
        assert fdr_group(2) == 2
        assert fdr_group(5) == 2
        assert fdr_group(6) == 3
        assert fdr_group(13) == 3
        assert fdr_group(14) == 4

    def test_known_codewords(self):
        assert fdr_encode_run(0) == "00"
        assert fdr_encode_run(1) == "01"
        assert fdr_encode_run(2) == "1000"
        assert fdr_encode_run(5) == "1011"
        assert fdr_encode_run(6) == "110000"

    def test_codeword_length_is_2k(self):
        for length in (0, 3, 9, 40, 1000):
            k = fdr_group(length)
            assert len(fdr_encode_run(length)) == 2 * k

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            fdr_group(-1)

    def test_truncated_rejected(self):
        with pytest.raises(ValueError):
            fdr_decode("1")
        with pytest.raises(ValueError):
            fdr_decode("100")  # tail too short for group 2

    @given(st.lists(st.integers(0, 100_000), max_size=40))
    def test_roundtrip(self, runs):
        assert fdr_decode(fdr_encode(runs)) == runs

    @given(st.lists(st.integers(0, 2000), min_size=1, max_size=40))
    def test_prefix_freeness_via_streaming(self, runs):
        """Concatenated codewords decode unambiguously — the defining
        property of the code's prefix structure."""
        assert fdr_decode(fdr_encode(runs)) == runs

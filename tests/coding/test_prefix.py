"""Unit and property tests for prefix codes and canonical construction."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.coding.prefix import (
    PrefixCode,
    PrefixViolationError,
    canonical_code_from_lengths,
    is_prefix_free,
    kraft_sum,
)


class TestIsPrefixFree:
    def test_accepts_proper_code(self):
        assert is_prefix_free(["0", "10", "110", "111"])

    def test_rejects_prefix_pair(self):
        assert not is_prefix_free(["0", "01"])

    def test_rejects_duplicates(self):
        assert not is_prefix_free(["10", "10"])

    def test_empty_is_prefix_free(self):
        assert is_prefix_free([])

    def test_nine_c_fixed_code_is_prefix_free(self):
        from repro.core.nine_c import NINE_C_CODEWORDS

        assert is_prefix_free(list(NINE_C_CODEWORDS.values()))


class TestKraftSum:
    def test_complete_code(self):
        assert kraft_sum([1, 2, 2]) == 1.0

    def test_incomplete_code(self):
        assert kraft_sum([2, 2]) == 0.5

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            kraft_sum([1, -1])


class TestCanonicalConstruction:
    def test_known_code(self):
        code = canonical_code_from_lengths({"a": 1, "b": 2, "c": 2})
        assert code == {"a": "0", "b": "10", "c": "11"}

    def test_empty(self):
        assert canonical_code_from_lengths({}) == {}

    def test_single_symbol(self):
        assert canonical_code_from_lengths({"only": 1}) == {"only": "0"}

    def test_overfull_lengths_rejected(self):
        with pytest.raises(PrefixViolationError):
            canonical_code_from_lengths({"a": 1, "b": 1, "c": 1})

    def test_zero_length_rejected(self):
        with pytest.raises(ValueError):
            canonical_code_from_lengths({"a": 0})

    @given(
        st.dictionaries(
            st.integers(0, 30),
            st.integers(min_value=1, max_value=12),
            min_size=1,
            max_size=16,
        )
    )
    def test_valid_lengths_always_yield_prefix_code(self, lengths):
        if kraft_sum(list(lengths.values())) > 1.0:
            return  # not realizable; covered by the rejection test
        code = canonical_code_from_lengths(lengths)
        assert is_prefix_free(list(code.values()))
        assert {s: len(w) for s, w in code.items()} == lengths


class TestPrefixCode:
    def test_encode(self):
        code = PrefixCode({"x": "0", "y": "10"})
        assert code.encode(["y", "x", "x"]) == "1000"

    def test_rejects_non_prefix_free(self):
        with pytest.raises(PrefixViolationError):
            PrefixCode({"a": "1", "b": "10"})

    def test_rejects_empty_codeword(self):
        with pytest.raises(ValueError):
            PrefixCode({"a": ""})

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            PrefixCode({"a": "2"})

    def test_expected_length(self):
        code = PrefixCode({"a": "0", "b": "11"})
        assert code.expected_length({"a": 3, "b": 2}) == 7

    def test_decode_tree_structure(self):
        code = PrefixCode({"a": "0", "b": "10", "c": "11"})
        tree = code.decode_tree()
        assert tree["0"] == "a"
        assert tree["1"]["0"] == "b"
        assert tree["1"]["1"] == "c"

    def test_contains_and_len(self):
        code = PrefixCode({"a": "0", "b": "1"})
        assert "a" in code and "z" not in code
        assert len(code) == 2

    def test_from_lengths(self):
        code = PrefixCode.from_lengths({"a": 1, "b": 2, "c": 2})
        assert code.length("a") == 1
        assert code.length("c") == 2

    def test_equality(self):
        assert PrefixCode({"a": "0"}) == PrefixCode({"a": "0"})
        assert PrefixCode({"a": "0"}) != PrefixCode({"a": "1"})

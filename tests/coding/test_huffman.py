"""Unit and property tests for Huffman coding."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

import numpy as np

from repro.coding.huffman import (
    entropy_bound,
    huffman_code,
    huffman_code_lengths,
    huffman_length_stats,
    huffman_length_stats_batch,
    huffman_total_bits,
    huffman_total_bits_batch,
    weighted_length,
)
from repro.coding.prefix import is_prefix_free, kraft_sum


class TestHuffmanLengths:
    def test_classic_example(self):
        assert huffman_code_lengths({"a": 5, "b": 3, "c": 2}) == {
            "a": 1,
            "b": 2,
            "c": 2,
        }

    def test_equal_frequencies_four_symbols(self):
        lengths = huffman_code_lengths({i: 1 for i in range(4)})
        assert sorted(lengths.values()) == [2, 2, 2, 2]

    def test_zero_frequency_symbols_dropped(self):
        lengths = huffman_code_lengths({"used": 7, "unused": 0})
        assert lengths == {"used": 1}

    def test_single_symbol_gets_one_bit(self):
        assert huffman_code_lengths({"only": 42}) == {"only": 1}

    def test_empty(self):
        assert huffman_code_lengths({}) == {}

    def test_negative_frequency_rejected(self):
        with pytest.raises(ValueError):
            huffman_code_lengths({"a": -1})

    def test_skewed_frequencies_give_unary_like_code(self):
        lengths = huffman_code_lengths({"a": 16, "b": 8, "c": 4, "d": 2, "e": 1})
        assert lengths["a"] == 1
        assert max(lengths.values()) == 4

    def test_paper_section_3_3_lengths(self):
        # v(1)=111U F=5, v(2)=1110 F=3, v(3)=0000 F=2:
        # Huffman gives lengths 1, 2, 2 (paper: '0', '10', '11').
        lengths = huffman_code_lengths({1: 5, 2: 3, 3: 2})
        assert lengths == {1: 1, 2: 2, 3: 2}


class TestHuffmanCode:
    def test_produces_prefix_code(self):
        code = huffman_code({"a": 9, "b": 5, "c": 2, "d": 1})
        assert is_prefix_free(list(code.as_dict().values()))

    def test_weighted_length_matches_code(self):
        frequencies = {"a": 9, "b": 5, "c": 2, "d": 1}
        code = huffman_code(frequencies)
        lengths = {s: code.length(s) for s in frequencies}
        assert weighted_length(lengths, frequencies) == code.expected_length(
            frequencies
        )


nonzero_freqs = st.dictionaries(
    st.integers(0, 40),
    st.integers(min_value=1, max_value=10_000),
    min_size=1,
    max_size=24,
)


class TestHuffmanOptimalityProperties:
    @given(nonzero_freqs)
    def test_kraft_equality(self, frequencies):
        """Huffman codes are complete: Kraft sum is exactly 1 (or the
        single-symbol special case with sum 1/2)."""
        lengths = huffman_code_lengths(frequencies)
        total = kraft_sum(list(lengths.values()))
        if len(lengths) == 1:
            assert total == 0.5
        else:
            assert math.isclose(total, 1.0)

    @given(nonzero_freqs)
    def test_within_entropy_plus_one_bit_per_symbol(self, frequencies):
        """Optimal prefix coding lies in [H, H + total_count)."""
        lengths = huffman_code_lengths(frequencies)
        cost = weighted_length(lengths, frequencies)
        bound = entropy_bound(frequencies)
        total = sum(frequencies.values())
        if len(frequencies) == 1:
            assert cost == total  # 1 bit per symbol, entropy 0
        else:
            assert bound - 1e-6 <= cost < bound + total

    @given(nonzero_freqs)
    def test_monotone_frequencies_get_monotone_lengths(self, frequencies):
        """A more frequent symbol never has a longer codeword."""
        lengths = huffman_code_lengths(frequencies)
        items = sorted(frequencies.items(), key=lambda kv: kv[1])
        for (sym_rare, f_rare), (sym_common, f_common) in zip(items, items[1:]):
            if f_rare < f_common:
                assert lengths[sym_rare] >= lengths[sym_common]

    @given(nonzero_freqs)
    def test_better_than_fixed_length(self, frequencies):
        """Huffman never beats, err, loses to a fixed-length block code."""
        lengths = huffman_code_lengths(frequencies)
        cost = weighted_length(lengths, frequencies)
        fixed = math.ceil(math.log2(len(frequencies))) if len(frequencies) > 1 else 1
        assert cost <= fixed * sum(frequencies.values())


class TestEntropyBound:
    def test_uniform(self):
        assert math.isclose(entropy_bound({"a": 1, "b": 1}), 2.0)

    def test_empty(self):
        assert entropy_bound({}) == 0.0

    def test_single_symbol_zero_entropy(self):
        assert entropy_bound({"a": 100}) == 0.0


class TestHuffmanTotalBits:
    """The array fast paths must price exactly like the dict path."""

    def test_classic_example(self):
        assert huffman_total_bits(np.asarray([5, 3, 2])) == 15

    def test_zero_frequencies_ignored(self):
        assert huffman_total_bits(np.asarray([0, 7, 0])) == 7

    def test_empty_and_all_zero(self):
        assert huffman_total_bits(np.asarray([], dtype=np.int64)) == 0
        assert huffman_total_bits(np.zeros(5, dtype=np.int64)) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            huffman_total_bits(np.asarray([3, -1]))
        with pytest.raises(ValueError):
            huffman_total_bits_batch(np.asarray([[3, -1]]))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            huffman_total_bits(np.zeros((2, 2), dtype=np.int64))
        with pytest.raises(ValueError):
            huffman_total_bits_batch(np.zeros(4, dtype=np.int64))

    def test_empty_batch(self):
        assert huffman_total_bits_batch(
            np.zeros((0, 8), dtype=np.int64)
        ).shape == (0,)

    @given(
        st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=80)
    )
    def test_scalar_matches_dict_path(self, freqs):
        as_map = {i: f for i, f in enumerate(freqs)}
        expected = weighted_length(huffman_code_lengths(as_map), as_map)
        assert huffman_total_bits(np.asarray(freqs)) == expected

    @given(
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=0, max_value=2**32),
    )
    def test_batch_matches_scalar_rows(self, n_rows, n_symbols, seed):
        rng = np.random.default_rng(seed)
        matrix = rng.integers(0, 500, (n_rows, n_symbols))
        matrix[rng.random(matrix.shape) < 0.3] = 0  # inactive symbols
        totals = huffman_total_bits_batch(matrix)
        for row in range(n_rows):
            assert totals[row] == huffman_total_bits(matrix[row])

    @given(
        st.integers(min_value=1, max_value=70),
        st.integers(min_value=0, max_value=2**32),
    )
    def test_lockstep_path_matches_scalar_rows(self, n_symbols, seed):
        """Large batches take the lockstep-vectorized merge — cover it
        explicitly (the property test above stays below the row
        threshold and only exercises the per-row fallback)."""
        from repro.coding.huffman import _LOCKSTEP_MIN_ROWS

        n_rows = _LOCKSTEP_MIN_ROWS + 32
        rng = np.random.default_rng(seed)
        matrix = rng.integers(0, 500, (n_rows, n_symbols))
        matrix[rng.random(matrix.shape) < 0.3] = 0
        matrix[0] = 0  # all-inactive row
        if n_symbols > 1:
            matrix[1] = 0
            matrix[1, 0] = 7  # single-symbol row
        totals = huffman_total_bits_batch(matrix)
        for row in range(n_rows):
            assert totals[row] == huffman_total_bits(matrix[row])


class TestHuffmanLengthStats:
    """Aggregate length statistics must match the dict code exactly.

    The multi-objective decoder model is built from these aggregates,
    so any drift from ``huffman_code_lengths`` would silently skew the
    area/time objectives.
    """

    def test_classic_example(self):
        stats = huffman_length_stats(np.asarray([5, 3, 2]))
        assert stats == (3, 15, 5, 2)  # lengths {1, 2, 2}

    def test_single_symbol(self):
        assert huffman_length_stats(np.asarray([0, 42, 0])) == (1, 42, 1, 1)

    def test_empty_and_all_zero(self):
        assert huffman_length_stats(np.asarray([], dtype=np.int64)) == (
            0, 0, 0, 0,
        )
        assert huffman_length_stats(np.zeros(4, dtype=np.int64)) == (0, 0, 0, 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            huffman_length_stats(np.asarray([3, -1]))
        with pytest.raises(ValueError):
            huffman_length_stats(np.zeros((2, 2), dtype=np.int64))
        with pytest.raises(ValueError):
            huffman_length_stats_batch(np.zeros(4, dtype=np.int64))

    def test_empty_batch(self):
        stats = huffman_length_stats_batch(np.zeros((0, 8), dtype=np.int64))
        assert all(column.shape == (0,) for column in stats)

    @given(
        st.lists(st.integers(min_value=0, max_value=10_000), min_size=1,
                 max_size=60)
    )
    def test_matches_dict_code_lengths(self, freqs):
        as_map = {i: f for i, f in enumerate(freqs)}
        lengths = huffman_code_lengths(as_map)
        stats = huffman_length_stats(np.asarray(freqs))
        assert stats.n_active == len(lengths)
        assert stats.total_bits == weighted_length(lengths, as_map)
        assert stats.sum_lengths == sum(lengths.values())
        assert stats.max_length == (max(lengths.values()) if lengths else 0)

    @given(
        st.integers(min_value=1, max_value=10),
        st.integers(min_value=1, max_value=30),
        st.integers(min_value=0, max_value=2**32),
    )
    def test_batch_matches_scalar_rows(self, n_rows, n_symbols, seed):
        rng = np.random.default_rng(seed)
        matrix = rng.integers(0, 500, (n_rows, n_symbols))
        matrix[rng.random(matrix.shape) < 0.3] = 0
        batched = huffman_length_stats_batch(matrix)
        for row in range(n_rows):
            scalar = huffman_length_stats(matrix[row])
            assert (
                batched.n_active[row],
                batched.total_bits[row],
                batched.sum_lengths[row],
                batched.max_length[row],
            ) == scalar

    def test_total_bits_column_matches_total_bits_batch(self):
        rng = np.random.default_rng(23)
        matrix = rng.integers(0, 300, (50, 20))
        matrix[rng.random(matrix.shape) < 0.4] = 0
        stats = huffman_length_stats_batch(matrix)
        assert np.array_equal(
            stats.total_bits, huffman_total_bits_batch(matrix)
        )

"""Unit tests for three-valued fault simulation."""

from repro.atpg.fault_sim import detects, fault_coverage, fault_simulate
from repro.atpg.faults import StuckAtFault, collapse_faults
from repro.circuits.bench_parser import parse_bench
from repro.circuits.library import load_circuit


def and_gate():
    return parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)")


class TestDetects:
    def test_detection(self):
        assert detects(and_gate(), {"a": 1, "b": 1}, StuckAtFault("y", 0))

    def test_no_activation_no_detection(self):
        # y is already 0; y s-a-0 cannot be observed.
        assert not detects(and_gate(), {"a": 0, "b": 1}, StuckAtFault("y", 0))

    def test_x_at_site_is_conservative(self):
        # a=1, b=X leaves y at X: detection must not be claimed.
        assert not detects(and_gate(), {"a": 1}, StuckAtFault("y", 0))

    def test_input_fault_detection(self):
        assert detects(and_gate(), {"a": 1, "b": 1}, StuckAtFault("a", 0))

    def test_masked_fault_not_detected(self):
        # With b=0 the output stays 0 regardless of the a fault.
        assert not detects(and_gate(), {"a": 1, "b": 0}, StuckAtFault("a", 0))

    def test_good_values_reuse(self):
        from repro.circuits.simulator import simulate3

        netlist = and_gate()
        cube = {"a": 1, "b": 1}
        good = simulate3(netlist, cube)
        assert detects(netlist, cube, StuckAtFault("y", 0), good_values=good)


class TestFaultSimulate:
    def test_returns_detected_subset(self):
        netlist = and_gate()
        faults = [
            StuckAtFault("y", 0),
            StuckAtFault("y", 1),
            StuckAtFault("a", 0),
        ]
        detected = fault_simulate(netlist, {"a": 1, "b": 1}, faults)
        assert StuckAtFault("y", 0) in detected
        assert StuckAtFault("a", 0) in detected
        assert StuckAtFault("y", 1) not in detected

    def test_x_cube_detects_nothing_without_activation(self):
        netlist = and_gate()
        detected = fault_simulate(netlist, {}, [StuckAtFault("y", 0)])
        assert detected == []


class TestFaultCoverage:
    def test_full_coverage_on_c17(self):
        """The exhaustive 32-pattern set detects every collapsed fault."""
        c17 = load_circuit("c17")
        cubes = [
            {net: (index >> bit) & 1 for bit, net in enumerate(c17.inputs)}
            for index in range(32)
        ]
        assert fault_coverage(c17, cubes, collapse_faults(c17)) == 1.0

    def test_empty_fault_list(self):
        assert fault_coverage(and_gate(), [], []) == 1.0

    def test_partial_coverage(self):
        netlist = and_gate()
        faults = [StuckAtFault("y", 0), StuckAtFault("y", 1)]
        # Only the s-a-1 fault is detectable with a=0,b=0 (y=0, faulty 1).
        coverage = fault_coverage(netlist, [{"a": 0, "b": 0}], faults)
        assert coverage == 0.5

"""Integration tests for the uncompacted stuck-at test-set flow."""


from repro.atpg.fault_sim import fault_coverage
from repro.atpg.faults import collapse_faults
from repro.atpg.stuck_at import generate_stuck_at_tests
from repro.circuits.generator import random_netlist
from repro.circuits.library import load_circuit
from repro.core.trits import DC


class TestStuckAtFlow:
    def test_c17_full_coverage(self):
        result = generate_stuck_at_tests(load_circuit("c17"))
        assert result.fault_coverage == 1.0
        assert not result.untestable
        assert not result.aborted

    def test_s27_full_coverage(self):
        result = generate_stuck_at_tests(load_circuit("s27"))
        assert result.fault_coverage == 1.0

    def test_test_set_shape(self):
        c17 = load_circuit("c17")
        result = generate_stuck_at_tests(c17)
        assert result.test_set.n_inputs == len(c17.inputs)
        assert result.test_set.n_patterns >= 1

    def test_cubes_are_x_rich(self):
        """Uncompacted PODEM cubes keep don't-cares — the property the
        compression paper depends on."""
        result = generate_stuck_at_tests(load_circuit("c17"))
        assert result.test_set.x_density() > 0.2

    def test_coverage_verified_independently(self):
        """Re-simulate the produced test set against a fresh collapsed
        fault list: coverage must be 100% (minus untestable faults)."""
        c17 = load_circuit("c17")
        result = generate_stuck_at_tests(c17)
        cubes = [
            {
                net: int(result.test_set.patterns[row, col])
                for col, net in enumerate(c17.inputs)
                if result.test_set.patterns[row, col] != DC
            }
            for row in range(result.test_set.n_patterns)
        ]
        testable = [
            f for f in collapse_faults(c17) if f not in result.untestable
        ]
        assert fault_coverage(c17, cubes, testable) == 1.0

    def test_deterministic(self):
        first = generate_stuck_at_tests(load_circuit("c17"))
        second = generate_stuck_at_tests(load_circuit("c17"))
        assert first.test_set.to_string() == second.test_set.to_string()

    def test_generated_circuit_flow(self):
        netlist = random_netlist(10, 50, seed=21)
        result = generate_stuck_at_tests(netlist, max_backtracks=300)
        # Redundant faults are fine; coverage counts testable ones only.
        assert result.fault_coverage > 0.95
        assert result.test_set.x_density() > 0.1

    def test_custom_name(self):
        result = generate_stuck_at_tests(load_circuit("c17"), name="mine")
        assert result.test_set.name == "mine"

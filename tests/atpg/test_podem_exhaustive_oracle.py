"""PODEM vs exhaustive enumeration: a complete-search oracle.

On circuits with few inputs we can enumerate every input vector and
decide testability exactly.  PODEM must agree on every fault: a cube
for every testable fault, a (correct) "untestable" verdict for every
redundant one.  This is the strongest correctness statement the ATPG
substrate can make.
"""

import itertools

import pytest

from repro.atpg.fault_sim import detects
from repro.atpg.faults import full_fault_list
from repro.atpg.podem import podem
from repro.circuits.bench_parser import parse_bench
from repro.circuits.generator import random_netlist
from repro.circuits.library import load_circuit
from repro.circuits.simulator import simulate3


def exhaustively_testable(netlist, fault) -> bool:
    """Ground truth by trying all 2^n fully-specified vectors."""
    for bits in itertools.product((0, 1), repeat=len(netlist.inputs)):
        cube = dict(zip(netlist.inputs, bits))
        good = simulate3(netlist, cube)
        if good[fault.net] == fault.value:
            continue
        faulty = simulate3(netlist, cube, forced={fault.net: fault.value})
        if any(
            good[po] != faulty[po]
            for po in netlist.outputs
        ):
            return True
    return False


def check_agreement(netlist, max_backtracks=5000):
    for fault in full_fault_list(netlist):
        truth = exhaustively_testable(netlist, fault)
        result = podem(netlist, fault, max_backtracks=max_backtracks)
        if truth:
            assert result.detected, f"{fault}: testable but PODEM said no"
            assert detects(netlist, result.cube, fault), (
                f"{fault}: PODEM cube does not detect"
            )
        else:
            assert result.status == "untestable", (
                f"{fault}: redundant but PODEM said {result.status}"
            )


class TestExhaustiveOracle:
    def test_c17(self):
        check_agreement(load_circuit("c17"))

    def test_redundant_logic(self):
        netlist = parse_bench(
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\n"
            "na = NOT(a)\nconst0 = AND(a, na)\nmid = OR(b, const0)\n"
            "y = AND(mid, b)"
        )
        check_agreement(netlist)

    def test_xor_tree(self):
        netlist = parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\n"
            "x1 = XOR(a, b)\ny = XNOR(x1, c)"
        )
        check_agreement(netlist)

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_random_small_circuits(self, seed):
        netlist = random_netlist(6, 18, seed=seed)
        check_agreement(netlist)

    def test_reconvergent_fanout(self):
        """Reconvergence is where naive ATPG goes wrong."""
        netlist = parse_bench(
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\n"
            "s = NAND(a, b)\nl = NAND(a, s)\nr = NAND(s, b)\ny = NAND(l, r)"
        )
        check_agreement(netlist)

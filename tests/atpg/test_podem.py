"""Unit and integration tests for PODEM and the justification engine."""

import pytest

from repro.atpg.fault_sim import detects
from repro.atpg.faults import StuckAtFault, collapse_faults
from repro.atpg.podem import justify, podem
from repro.circuits.bench_parser import parse_bench
from repro.circuits.generator import random_netlist
from repro.circuits.library import load_circuit
from repro.circuits.simulator import simulate3


class TestPodemBasics:
    def test_detects_simple_fault(self):
        netlist = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)")
        result = podem(netlist, StuckAtFault("y", 0))
        assert result.detected
        assert result.cube == {"a": 1, "b": 1}

    def test_cube_actually_detects(self):
        c17 = load_circuit("c17")
        for fault in collapse_faults(c17):
            result = podem(c17, fault)
            assert result.detected, f"{fault} should be testable"
            assert detects(c17, result.cube, fault), f"{fault} cube invalid"

    def test_cubes_contain_dont_cares(self):
        """PODEM assigns only what the search needs; on c17 some cube
        must leave inputs unassigned."""
        c17 = load_circuit("c17")
        sparse = [
            podem(c17, fault).cube for fault in collapse_faults(c17)
        ]
        assert any(len(cube) < len(c17.inputs) for cube in sparse)

    def test_unknown_fault_site_rejected(self):
        c17 = load_circuit("c17")
        with pytest.raises(ValueError):
            podem(c17, StuckAtFault("nope", 0))


class TestPodemRedundantFaults:
    def test_untestable_fault_identified(self):
        """y = AND(a, NOT(a)) is constant 0: y s-a-0 is undetectable."""
        netlist = parse_bench(
            "INPUT(a)\nOUTPUT(y)\nn = NOT(a)\ny = AND(a, n)"
        )
        result = podem(netlist, StuckAtFault("y", 0))
        assert result.status == "untestable"

    def test_testable_s_a_1_on_constant_zero(self):
        netlist = parse_bench(
            "INPUT(a)\nOUTPUT(y)\nn = NOT(a)\ny = AND(a, n)"
        )
        result = podem(netlist, StuckAtFault("y", 1))
        assert result.detected

    def test_blocked_propagation_is_untestable(self):
        """Fault effect ANDed with constant 0 can never reach the PO."""
        netlist = parse_bench(
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\n"
            "nb = NOT(b)\nzero = AND(b, nb)\nfx = NOT(a)\ny = AND(fx, zero)"
        )
        result = podem(netlist, StuckAtFault("fx", 0))
        assert result.status == "untestable"


class TestPodemOnGeneratedCircuits:
    @pytest.mark.parametrize("seed", [11, 22, 33])
    def test_every_generated_cube_verifies(self, seed):
        netlist = random_netlist(8, 40, seed=seed)
        for fault in collapse_faults(netlist)[:40]:
            result = podem(netlist, fault, max_backtracks=200)
            if result.detected:
                assert detects(netlist, result.cube, fault)

    def test_coverage_reasonable_on_generated(self):
        netlist = random_netlist(10, 60, seed=4)
        faults = collapse_faults(netlist)
        outcomes = [podem(netlist, f, max_backtracks=500) for f in faults]
        detected = sum(1 for r in outcomes if r.detected)
        # Random circuits have redundancy, but most faults are testable.
        assert detected / len(faults) > 0.5


class TestJustify:
    def test_simple_requirement(self):
        c17 = load_circuit("c17")
        cube = justify(c17, {"G10": 0})
        assert cube is not None
        assert simulate3(c17, cube)["G10"] == 0

    def test_multiple_requirements(self):
        c17 = load_circuit("c17")
        requirements = {"G10": 1, "G11": 1, "G16": 0}
        cube = justify(c17, requirements)
        assert cube is not None
        values = simulate3(c17, cube)
        assert all(values[net] == value for net, value in requirements.items())

    def test_pi_requirement(self):
        c17 = load_circuit("c17")
        cube = justify(c17, {"G1": 1})
        assert cube == {"G1": 1}

    def test_unsatisfiable_requirements(self):
        netlist = parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(a)")
        assert justify(netlist, {"a": 1, "y": 1}) is None

    def test_constant_net_requirement(self):
        netlist = parse_bench(
            "INPUT(a)\nOUTPUT(y)\nn = NOT(a)\ny = AND(a, n)"
        )
        assert justify(netlist, {"y": 1}) is None
        assert justify(netlist, {"y": 0}) is not None

    def test_invalid_requirement_value(self):
        c17 = load_circuit("c17")
        with pytest.raises(ValueError):
            justify(c17, {"G10": 2})

    def test_unknown_net_rejected(self):
        c17 = load_circuit("c17")
        with pytest.raises(ValueError):
            justify(c17, {"nope": 1})

    def test_justified_cube_leaves_rest_x(self):
        c17 = load_circuit("c17")
        cube = justify(c17, {"G10": 0})
        values = simulate3(c17, cube)
        # Only the cone of G10 (G1, G3) need be assigned.
        assert set(cube) <= {"G1", "G3"}
        assert values["G10"] == 0

"""Tests for static compaction (and why the paper avoids it)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.atpg.compaction import compact_test_set, cubes_compatible, merge_cubes
from repro.atpg.fault_sim import fault_coverage
from repro.atpg.faults import collapse_faults
from repro.atpg.stuck_at import generate_stuck_at_tests
from repro.circuits.library import load_circuit
from repro.core.trits import DC
from repro.testdata.test_set import TestSet


def cube(text: str) -> np.ndarray:
    from repro.core.trits import parse_trits

    return np.asarray(parse_trits(text), dtype=np.int8)


class TestCompatibility:
    def test_compatible(self):
        assert cubes_compatible(cube("0X1"), cube("01X"))

    def test_conflict(self):
        assert not cubes_compatible(cube("0X1"), cube("1X1"))

    def test_x_always_compatible(self):
        assert cubes_compatible(cube("XXX"), cube("011"))


class TestMerge:
    def test_union_of_care_bits(self):
        merged = merge_cubes(cube("0XX"), cube("X1X"))
        assert merged.tolist() == [0, 1, DC]

    def test_incompatible_rejected(self):
        with pytest.raises(ValueError):
            merge_cubes(cube("0"), cube("1"))


class TestCompactTestSet:
    def test_docstring_example(self):
        ts = TestSet.from_strings("t", ["1X0", "10X", "0XX"])
        compacted = compact_test_set(ts)
        assert compacted.n_patterns == 2

    def test_no_merge_when_all_conflict(self):
        ts = TestSet.from_strings("t", ["00", "11", "01"])
        assert compact_test_set(ts).n_patterns == 3

    def test_coverage_preserved_on_c17(self):
        """The headline invariant: compaction never loses coverage."""
        c17 = load_circuit("c17")
        atpg = generate_stuck_at_tests(c17)
        faults = collapse_faults(c17)

        def cubes_of(ts):
            return [
                {
                    net: int(ts.patterns[row, col])
                    for col, net in enumerate(c17.inputs)
                    if ts.patterns[row, col] != DC
                }
                for row in range(ts.n_patterns)
            ]

        compacted = compact_test_set(atpg.test_set)
        assert compacted.n_patterns <= atpg.test_set.n_patterns
        assert fault_coverage(c17, cubes_of(compacted), faults) == pytest.approx(
            fault_coverage(c17, cubes_of(atpg.test_set), faults)
        )

    def test_compaction_reduces_x_density(self):
        """The compression-relevant effect: merged cubes are denser —
        the reason the paper uses uncompacted test sets."""
        c17 = load_circuit("c17")
        atpg = generate_stuck_at_tests(c17)
        compacted = compact_test_set(atpg.test_set)
        if compacted.n_patterns < atpg.test_set.n_patterns:
            assert compacted.x_density() < atpg.test_set.x_density()

    @settings(max_examples=25)
    @given(
        st.lists(
            st.text(alphabet="01X", min_size=6, max_size=6),
            min_size=1,
            max_size=20,
        )
    )
    def test_every_original_cube_is_contained(self, rows):
        """Each input cube's specified bits survive in some merged cube."""
        ts = TestSet.from_strings("t", rows)
        compacted = compact_test_set(ts)
        for row in range(ts.n_patterns):
            original = ts.patterns[row]
            contained = False
            for merged_row in range(compacted.n_patterns):
                merged = compacted.patterns[merged_row]
                specified = original != DC
                if (merged[specified] == original[specified]).all():
                    contained = True
                    break
            assert contained

"""Unit and integration tests for robust path-delay test generation."""


from repro.atpg.path_delay import (
    Transition,
    generate_path_delay_tests,
    generate_robust_test,
    is_robust_test,
    robust_requirements,
)
from repro.circuits.bench_parser import parse_bench
from repro.circuits.generator import random_netlist
from repro.circuits.library import load_circuit
from repro.circuits.paths import Path, enumerate_paths


class TestTransition:
    def test_values(self):
        assert Transition.RISING.values == (0, 1)
        assert Transition.FALLING.values == (1, 0)


class TestRobustRequirements:
    def test_and_gate_ending_controlling(self):
        """Falling transition through AND ends at c=0: side steady nc."""
        netlist = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)")
        frame1, frame2 = robust_requirements(
            netlist, Path(("a", "y")), Transition.FALLING
        )
        assert frame1["b"] == 1 and frame2["b"] == 1  # steady non-controlling
        assert frame1["a"] == 1 and frame2["a"] == 0
        assert frame1["y"] == 1 and frame2["y"] == 0

    def test_and_gate_ending_non_controlling(self):
        """Rising transition through AND ends at nc=1: side free in v1."""
        netlist = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)")
        frame1, frame2 = robust_requirements(
            netlist, Path(("a", "y")), Transition.RISING
        )
        assert "b" not in frame1  # unconstrained in frame 1
        assert frame2["b"] == 1

    def test_inversion_flips_transition(self):
        netlist = parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(a)")
        frame1, frame2 = robust_requirements(
            netlist, Path(("a", "y")), Transition.RISING
        )
        assert (frame1["y"], frame2["y"]) == (1, 0)

    def test_nor_gate_side_constraints(self):
        """NOR: c=1, nc=0; rising on-path ends at c -> sides steady 0."""
        netlist = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NOR(a, b)")
        frame1, frame2 = robust_requirements(
            netlist, Path(("a", "y")), Transition.RISING
        )
        assert frame1["b"] == 0 and frame2["b"] == 0
        assert (frame1["y"], frame2["y"]) == (1, 0)

    def test_xor_sides_steady(self):
        netlist = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XOR(a, b)")
        frame1, frame2 = robust_requirements(
            netlist, Path(("a", "y")), Transition.RISING, xor_side_value=1
        )
        assert frame1["b"] == 1 and frame2["b"] == 1
        assert (frame1["y"], frame2["y"]) == (1, 0)  # inverted by side=1

    def test_malformed_path_returns_none(self):
        netlist = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)")
        assert robust_requirements(
            netlist, Path(("a", "b")), Transition.RISING
        ) is None


class TestGenerateRobustTest:
    def test_single_gate_test(self):
        netlist = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)")
        test = generate_robust_test(netlist, Path(("a", "y")), Transition.RISING)
        assert test is not None
        assert is_robust_test(netlist, test)
        assert test.vector_one["a"] == 0 and test.vector_two["a"] == 1

    def test_c17_all_paths_testable(self):
        """c17 is fully robustly path-delay testable."""
        c17 = load_circuit("c17")
        for path in enumerate_paths(c17):
            for transition in Transition:
                test = generate_robust_test(c17, path, transition)
                assert test is not None, f"{path} {transition} failed"
                assert is_robust_test(c17, test)

    def test_untestable_path(self):
        """Side input tied to the controlling value blocks the path."""
        netlist = parse_bench(
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\n"
            "nb = NOT(b)\nzero = AND(b, nb)\ny = OR(a, zero)"
        )
        # Path a->y through OR needs side 'zero' = 0 (fine), but path
        # zero->y needs a transition on a constant net: the launch
        # values 0->1 on 'zero' are unjustifiable.
        test = generate_robust_test(
            netlist, Path(("zero", "y")), Transition.RISING
        )
        assert test is None


class TestGeneratePathDelayTests:
    def test_c17_full_robust_coverage(self):
        c17 = load_circuit("c17")
        result = generate_path_delay_tests(c17)
        assert result.robust_coverage == 1.0
        assert len(result.tests) == 22  # 11 paths x 2 transitions

    def test_test_set_is_vector_pairs(self):
        c17 = load_circuit("c17")
        result = generate_path_delay_tests(c17)
        assert result.test_set.n_inputs == 2 * len(c17.inputs)

    def test_tests_are_x_rich(self):
        c17 = load_circuit("c17")
        result = generate_path_delay_tests(c17)
        assert result.test_set.x_density() > 0.2

    def test_every_test_validates(self):
        c17 = load_circuit("c17")
        result = generate_path_delay_tests(c17)
        assert all(is_robust_test(c17, t) for t in result.tests)

    def test_s27_generates_tests(self):
        s27 = load_circuit("s27")
        result = generate_path_delay_tests(s27)
        assert len(result.tests) > 0
        assert all(is_robust_test(s27, t) for t in result.tests)

    def test_max_paths_limit(self):
        c17 = load_circuit("c17")
        result = generate_path_delay_tests(c17, max_paths=3)
        assert len(result.tests) + len(result.untestable) == 6

    def test_generated_circuit(self):
        netlist = random_netlist(8, 30, seed=13)
        result = generate_path_delay_tests(netlist, max_paths=40)
        assert all(is_robust_test(netlist, t) for t in result.tests)

"""Unit tests for X-maximizing test relaxation."""

import pytest

from repro.atpg.fault_sim import fault_simulate
from repro.atpg.faults import StuckAtFault, collapse_faults
from repro.atpg.relax import relax_cube, relax_test_set
from repro.atpg.stuck_at import generate_stuck_at_tests
from repro.circuits.bench_parser import parse_bench
from repro.circuits.library import load_circuit
from repro.testdata.test_set import TestSet


class TestRelaxCube:
    def test_drops_irrelevant_assignment(self):
        netlist = parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nOUTPUT(z)\n"
            "y = AND(a, b)\nz = BUF(c)"
        )
        cube = {"a": 1, "b": 1, "c": 0}
        relaxed = relax_cube(netlist, cube, [StuckAtFault("y", 0)])
        assert "c" not in relaxed
        assert relaxed == {"a": 1, "b": 1}

    def test_keeps_required_assignments(self):
        netlist = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)")
        cube = {"a": 1, "b": 1}
        relaxed = relax_cube(netlist, cube, [StuckAtFault("y", 0)])
        assert relaxed == cube  # both bits needed for activation

    def test_rejects_non_detecting_cube(self):
        netlist = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)")
        with pytest.raises(ValueError):
            relax_cube(netlist, {"a": 0, "b": 0}, [StuckAtFault("y", 0)])

    def test_result_is_subset(self):
        c17 = load_circuit("c17")
        cube = {net: 1 for net in c17.inputs}
        detected = fault_simulate(c17, cube, collapse_faults(c17))
        relaxed = relax_cube(c17, cube, detected)
        assert set(relaxed.items()) <= set(cube.items())


class TestRelaxTestSet:
    def test_coverage_preserved_and_x_density_grows(self):
        c17 = load_circuit("c17")
        faults = collapse_faults(c17)
        # Fully-specified exhaustive-ish test set.
        rows = []
        for index in range(8):
            rows.append(
                "".join(str((index >> bit) & 1) for bit in range(5))
            )
        dense = TestSet.from_strings("dense", rows)
        relaxed = relax_test_set(c17, dense, faults)
        assert relaxed.x_density() >= dense.x_density()
        assert relaxed.n_patterns == dense.n_patterns

        # Coverage of the relaxed set >= coverage of the dense set.
        def coverage(test_set):
            remaining = set(faults)
            for row in range(test_set.n_patterns):
                cube = {
                    net: int(test_set.patterns[row, col])
                    for col, net in enumerate(c17.inputs)
                    if test_set.patterns[row, col] != 2
                }
                remaining -= set(fault_simulate(c17, cube, remaining))
            return 1 - len(remaining) / len(faults)

        assert coverage(relaxed) >= coverage(dense) - 1e-9

    def test_relaxing_podem_output_keeps_coverage(self):
        """PODEM cubes are already sparse; relaxation must not break
        their responsibility sets."""
        c17 = load_circuit("c17")
        result = generate_stuck_at_tests(c17)
        relaxed = relax_test_set(c17, result.test_set, collapse_faults(c17))
        assert relaxed.x_density() >= result.test_set.x_density() - 1e-9

    def test_name_suffix(self):
        c17 = load_circuit("c17")
        result = generate_stuck_at_tests(c17)
        relaxed = relax_test_set(c17, result.test_set, collapse_faults(c17))
        assert relaxed.name.endswith("-relaxed")

"""Unit tests for the fault model and equivalence collapsing."""

import pytest

from repro.atpg.faults import StuckAtFault, collapse_faults, full_fault_list
from repro.circuits.bench_parser import parse_bench
from repro.circuits.library import load_circuit


class TestStuckAtFault:
    def test_valid_values(self):
        assert StuckAtFault("n", 0).value == 0
        assert StuckAtFault("n", 1).value == 1

    def test_invalid_value(self):
        with pytest.raises(ValueError):
            StuckAtFault("n", 2)

    def test_str(self):
        assert str(StuckAtFault("G22", 0)) == "G22 s-a-0"

    def test_ordering_deterministic(self):
        faults = [StuckAtFault("b", 1), StuckAtFault("a", 0)]
        assert sorted(faults)[0].net == "a"


class TestFullFaultList:
    def test_two_per_net(self):
        c17 = load_circuit("c17")
        faults = full_fault_list(c17)
        assert len(faults) == 2 * len(c17.all_nets())

    def test_deterministic_order(self):
        c17 = load_circuit("c17")
        assert full_fault_list(c17) == full_fault_list(c17)


class TestCollapsing:
    def test_c17_collapse_count(self):
        """c17: 22 total; 6 fanout-free NAND inputs merge with their
        gate outputs -> 16 classes."""
        assert len(collapse_faults(load_circuit("c17"))) == 16

    def test_collapsed_is_subset_of_full(self):
        c17 = load_circuit("c17")
        assert set(collapse_faults(c17)) <= set(full_fault_list(c17))

    def test_inverter_chain_collapses_to_two(self):
        netlist = parse_bench(
            "INPUT(a)\nOUTPUT(y)\nn1 = NOT(a)\nn2 = NOT(n1)\ny = NOT(n2)"
        )
        # All 8 faults collapse into 2 classes through the chain.
        assert len(collapse_faults(netlist)) == 2

    def test_and_gate_collapse(self):
        netlist = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)")
        collapsed = collapse_faults(netlist)
        # a0 ≡ b0 ≡ y0 merge; a1, b1, y1 remain: 4 classes.
        assert len(collapsed) == 4

    def test_fanout_stem_not_collapsed(self):
        netlist = parse_bench(
            "INPUT(a)\nOUTPUT(y)\nOUTPUT(z)\ny = NOT(a)\nz = NOT(a)"
        )
        collapsed = collapse_faults(netlist)
        # 'a' feeds two gates: its faults stay separate from y's and z's.
        nets = {fault.net for fault in collapsed}
        assert "a" in nets

    def test_xor_inputs_never_collapse(self):
        netlist = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XOR(a, b)")
        assert len(collapse_faults(netlist)) == 6

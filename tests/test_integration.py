"""Cross-module integration tests: the paper's flows end to end.

These tests exercise the same pipelines the examples and benches run,
but with strict oracles: fault coverage re-verified independently,
streams decoded bit-exactly, and rates cross-checked between the fast
fitness path and the materializing compressor.
"""

import numpy as np
import pytest

import repro
from repro.atpg import (
    collapse_faults,
    compact_test_set,
    fault_coverage,
    generate_path_delay_tests,
    generate_stuck_at_tests,
    is_robust_test,
    relax_test_set,
)
from repro.circuits import load_circuit
from repro.core.baselines import compress_fdr, compress_golomb
from repro.core.decoder_hw import decoder_model_for
from repro.core.multi_scan import compress_multi_scan
from repro.core.trits import DC


def fast_config(k=4, l=8) -> repro.CompressionConfig:
    return repro.CompressionConfig(
        block_length=k,
        n_vectors=l,
        runs=2,
        ea=repro.EAParameters(stagnation_limit=15, max_evaluations=400),
    )


@pytest.fixture(scope="module")
def s27_stuck_at():
    return generate_stuck_at_tests(load_circuit("s27"))


class TestStuckAtPipeline:
    def test_atpg_to_compression_to_decode(self, s27_stuck_at):
        """Netlist -> PODEM -> EA compression -> decode, verified."""
        test_set = s27_stuck_at.test_set
        result = repro.optimize_mv_set(test_set.blocks(4), fast_config(), seed=3)
        compressed = repro.compress_blocks(test_set.blocks(4), result.best_mv_set)
        decoded = repro.verify_roundtrip(compressed)
        assert decoded.blocks_decoded == test_set.blocks(4).n_blocks

    def test_relaxation_then_compression_improves_or_ties(self, s27_stuck_at):
        """More Xs -> blocks match cheaper MVs, so 9C+HC compresses
        better (up to a small Huffman redistribution tolerance)."""
        netlist = load_circuit("s27")
        relaxed = relax_test_set(
            netlist, s27_stuck_at.test_set, collapse_faults(netlist)
        )
        assert relaxed.x_density() >= s27_stuck_at.test_set.x_density() - 1e-9
        before = repro.compress_nine_c(
            s27_stuck_at.test_set.blocks(8), use_huffman=True
        ).rate
        after = repro.compress_nine_c(relaxed.blocks(8), use_huffman=True).rate
        assert after >= before - 2.0

    def test_compaction_preserves_coverage_but_densifies(self, s27_stuck_at):
        netlist = load_circuit("s27")
        faults = collapse_faults(netlist)
        compacted = compact_test_set(s27_stuck_at.test_set)

        def cubes_of(ts):
            return [
                {
                    net: int(ts.patterns[row, col])
                    for col, net in enumerate(netlist.inputs)
                    if ts.patterns[row, col] != DC
                }
                for row in range(ts.n_patterns)
            ]

        original_coverage = fault_coverage(
            netlist, cubes_of(s27_stuck_at.test_set), faults
        )
        compacted_coverage = fault_coverage(netlist, cubes_of(compacted), faults)
        assert compacted_coverage >= original_coverage - 1e-9
        assert compacted.total_bits <= s27_stuck_at.test_set.total_bits

    def test_all_methods_agree_on_original_size(self, s27_stuck_at):
        """Every method must report the same T·n baseline."""
        test_set = s27_stuck_at.test_set
        flat = test_set.flatten()
        golomb = compress_golomb(flat)
        fdr = compress_fdr(flat)
        nine_c = repro.compress_nine_c(test_set.blocks(8))
        assert golomb.original_bits == test_set.total_bits
        assert fdr.original_bits == test_set.total_bits
        assert nine_c.original_bits == test_set.total_bits


class TestPathDelayPipeline:
    def test_robust_tests_compress_and_decode(self):
        netlist = load_circuit("c17")
        result = generate_path_delay_tests(netlist)
        assert all(is_robust_test(netlist, t) for t in result.tests)
        test_set = result.test_set
        ea = repro.optimize_mv_set(test_set.blocks(5), fast_config(k=5), seed=1)
        compressed = repro.compress_blocks(test_set.blocks(5), ea.best_mv_set)
        repro.verify_roundtrip(compressed)

    def test_vector_pairs_width(self):
        netlist = load_circuit("s27")
        result = generate_path_delay_tests(netlist, max_paths=30)
        assert result.test_set.n_inputs == 2 * len(netlist.inputs)


class TestMultiScanOnGenuineData:
    def test_multi_scan_on_atpg_cubes(self, s27_stuck_at):
        result = compress_multi_scan(
            s27_stuck_at.test_set,
            n_chains=2,
            config=fast_config(),
            mode="shared",
            seed=5,
        )
        assert result.original_bits == s27_stuck_at.test_set.total_bits
        assert len(result.chains) == 2


class TestDecoderModelConsistency:
    def test_decoder_leaves_match_codewords(self, s27_stuck_at):
        test_set = s27_stuck_at.test_set
        ea = repro.optimize_mv_set(test_set.blocks(4), fast_config(), seed=9)
        compressed = repro.compress_blocks(test_set.blocks(4), ea.best_mv_set)
        model = decoder_model_for(compressed)
        assert model.n_codewords == len(compressed.table.codewords)
        # A prefix tree with n leaves has at most n-1 internal nodes.
        if model.n_codewords > 1:
            assert model.fsm_states <= model.n_codewords - 1 + 1
        assert model.output_buffer_bits == 4

    def test_fill_counter_covers_max_nu(self, s27_stuck_at):
        test_set = s27_stuck_at.test_set
        ea = repro.optimize_mv_set(test_set.blocks(4), fast_config(), seed=9)
        compressed = repro.compress_blocks(test_set.blocks(4), ea.best_mv_set)
        model = decoder_model_for(compressed)
        max_nu = max(
            compressed.mv_set[i].n_unspecified
            for i in compressed.table.codewords
        )
        if max_nu:
            assert 2 ** model.fill_counter_bits >= max_nu + 1


class TestFitnessCompressorAgreementOnRealData:
    def test_rates_agree(self, s27_stuck_at):
        """The EA's fast fitness path and the materializing compressor
        must price genuine ATPG data identically."""
        from repro.core.fitness import CompressionRateFitness

        blocks = s27_stuck_at.test_set.blocks(4)
        rng = np.random.default_rng(0)
        for _ in range(10):
            genome = rng.integers(0, 3, size=6 * 4, dtype=np.int8)
            genome[-4:] = 2  # all-U tail
            fitness = CompressionRateFitness(blocks, n_vectors=6, block_length=4)
            predicted = fitness(genome)
            actual = repro.compress_blocks(
                blocks, repro.MVSet.from_genome(genome, 4)
            ).rate
            assert predicted == pytest.approx(actual)

"""Tests for the repro.tuning autotuning subsystem."""

"""TuningProfile JSON round-trip, mismatch fallback, active-profile scope."""

import json

import pytest

from repro.core import fitness as fitness_module
from repro.core import kernels as kernels_module
from repro.coding import huffman as huffman_module
from repro.tuning.profile import (
    PROFILE_FORMAT,
    PROFILE_VERSION,
    MachineFingerprint,
    ProfileLoadError,
    TuningProfile,
    current_fingerprint,
    default_profile,
    default_profile_path,
    fingerprint_matches,
    get_active_profile,
    load_profile,
    load_profile_or_none,
    save_profile,
    set_active_profile,
    use_profile,
)


def tuned_profile(**overrides) -> TuningProfile:
    base = dict(
        fingerprint=current_fingerprint(gemm_us=12.5, bitand_us=3.25),
        bitpack_min_distinct=192,
        bitpack_wide_min_distinct=1536,
        mv_dedup_min_genomes=8,
        mv_dedup_min_table=384,
        mv_dedup_min_distinct=1024,
        bitpack_shard_size=512,
        huffman_lockstep_min_rows=128,
        mv_feedback_min_hit_rate=0.4,
        source="test",
        created="2026-07-29T00:00:00+00:00",
        probe_seconds=1.5,
        measurements=(("kernel_narrow/d256/gemm", 0.001),),
    )
    base.update(overrides)
    return TuningProfile(**base)


class TestRoundTrip:
    def test_save_load_is_identity(self, tmp_path):
        profile = tuned_profile()
        path = save_profile(profile, tmp_path / "profile.json")
        assert load_profile(path) == profile

    def test_document_structure(self, tmp_path):
        path = save_profile(tuned_profile(), tmp_path / "profile.json")
        document = json.loads(path.read_text())
        assert document["format"] == PROFILE_FORMAT
        assert document["version"] == PROFILE_VERSION
        assert document["thresholds"]["bitpack_min_distinct"] == 192
        assert document["thresholds"]["bitpack_shard_size"] == 512
        assert document["fingerprint"]["cpu_count"] >= 1
        assert document["measurements"] == {"kernel_narrow/d256/gemm": 0.001}

    def test_none_shard_size_round_trips(self, tmp_path):
        profile = tuned_profile(bitpack_shard_size=None)
        path = save_profile(profile, tmp_path / "profile.json")
        assert load_profile(path).bitpack_shard_size is None

    def test_save_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "profile.json"
        save_profile(tuned_profile(), path)
        assert path.exists()


class TestLoadFallback:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ProfileLoadError, match="cannot read"):
            load_profile(tmp_path / "absent.json")

    def test_corrupt_json(self, tmp_path):
        path = tmp_path / "profile.json"
        path.write_text("{not json")
        with pytest.raises(ProfileLoadError, match="invalid JSON"):
            load_profile(path)

    def test_wrong_format_tag(self, tmp_path):
        path = tmp_path / "profile.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ProfileLoadError, match="not a repro-tuning-profile"):
            load_profile(path)

    def test_version_mismatch(self, tmp_path):
        document = tuned_profile().to_dict()
        document["version"] = PROFILE_VERSION + 1
        path = tmp_path / "profile.json"
        path.write_text(json.dumps(document))
        with pytest.raises(ProfileLoadError, match="version"):
            load_profile(path)

    def test_unknown_threshold_field_rejected(self, tmp_path):
        document = tuned_profile().to_dict()
        document["thresholds"]["warp_drive_coils"] = 7
        path = tmp_path / "profile.json"
        path.write_text(json.dumps(document))
        with pytest.raises(ProfileLoadError, match="warp_drive_coils"):
            load_profile(path)

    def test_fingerprint_mismatch(self, tmp_path):
        machine = current_fingerprint()
        foreign = MachineFingerprint(
            cpu_count=machine.cpu_count + 8,
            machine="riscv128",
            blas_vendor="hypothetical-blas",
            python=machine.python,
            numpy=machine.numpy,
        )
        path = save_profile(
            tuned_profile(fingerprint=foreign), tmp_path / "profile.json"
        )
        with pytest.raises(ProfileLoadError, match="different machine"):
            load_profile(path)
        # ... unless the caller explicitly opts out of the check.
        assert load_profile(path, check_fingerprint=False).fingerprint == foreign

    def test_or_none_returns_none_and_warns(self, tmp_path):
        reasons = []
        profile = load_profile_or_none(
            tmp_path / "absent.json", warn=reasons.append
        )
        assert profile is None
        assert len(reasons) == 1 and "cannot read" in reasons[0]

    def test_or_none_passes_through_valid_profiles(self, tmp_path):
        path = save_profile(tuned_profile(), tmp_path / "profile.json")
        assert load_profile_or_none(path) == tuned_profile()


class TestFingerprint:
    def test_matches_itself(self):
        fingerprint = current_fingerprint()
        assert fingerprint_matches(fingerprint, fingerprint)

    def test_timing_signature_is_informational(self):
        machine = current_fingerprint()
        slower = MachineFingerprint(**{**vars(machine), "gemm_us": 999.0})
        assert fingerprint_matches(slower, machine)

    def test_cpu_count_gates(self):
        machine = current_fingerprint()
        other = MachineFingerprint(
            **{**vars(machine), "cpu_count": machine.cpu_count + 1}
        )
        assert not fingerprint_matches(other, machine)

    def test_none_never_matches(self):
        assert not fingerprint_matches(None, current_fingerprint())

    def test_default_profile_is_stamped_for_this_machine(self):
        profile = default_profile()
        assert fingerprint_matches(profile.fingerprint, current_fingerprint())


class TestDefaultsStayInSync:
    """The shipped TuningProfile defaults ARE the module constants.

    The no-profile fallback reads the constants and a default-valued
    profile must describe identical behavior — if either side moves
    without the other, tuned and untuned runs silently diverge in
    engagement decisions.
    """

    def test_kernel_thresholds(self):
        profile = TuningProfile()
        assert profile.bitpack_min_distinct == kernels_module.BITPACK_MIN_DISTINCT
        assert (
            profile.bitpack_wide_min_distinct
            == kernels_module.BITPACK_WIDE_MIN_DISTINCT
        )
        assert profile.native_min_distinct == kernels_module.NATIVE_MIN_DISTINCT
        assert (
            profile.native_wide_min_distinct
            == kernels_module.NATIVE_WIDE_MIN_DISTINCT
        )
        assert profile.scalar_max_work == kernels_module.SCALAR_MAX_WORK

    def test_dedup_thresholds(self):
        profile = TuningProfile()
        assert profile.mv_dedup_min_genomes == fitness_module._MV_DEDUP_MIN_GENOMES
        assert profile.mv_dedup_min_table == fitness_module._MV_DEDUP_MIN_TABLE
        assert (
            profile.mv_dedup_min_distinct
            == fitness_module._MV_DEDUP_MIN_DISTINCT
        )

    def test_huffman_threshold(self):
        assert (
            TuningProfile().huffman_lockstep_min_rows
            == huffman_module._LOCKSTEP_MIN_ROWS
        )


class TestValidation:
    def test_rejects_nonpositive_thresholds(self):
        with pytest.raises(ValueError, match="mv_dedup_min_table"):
            TuningProfile(mv_dedup_min_table=0)

    def test_rejects_bad_hit_rate(self):
        with pytest.raises(ValueError, match="mv_feedback_min_hit_rate"):
            TuningProfile(mv_feedback_min_hit_rate=1.5)

    def test_rejects_bad_shard_size(self):
        with pytest.raises(ValueError, match="bitpack_shard_size"):
            TuningProfile(bitpack_shard_size=0)

    def test_with_updates(self):
        profile = TuningProfile().with_updates(bitpack_min_distinct=64)
        assert profile.bitpack_min_distinct == 64
        assert profile.mv_dedup_min_table == TuningProfile().mv_dedup_min_table


class TestActiveProfile:
    def test_default_is_none(self):
        assert get_active_profile() is None

    def test_set_and_clear(self):
        profile = tuned_profile()
        set_active_profile(profile)
        try:
            assert get_active_profile() is profile
        finally:
            set_active_profile(None)
        assert get_active_profile() is None

    def test_use_profile_restores_previous(self):
        outer = tuned_profile()
        inner = tuned_profile(bitpack_min_distinct=64)
        set_active_profile(outer)
        try:
            with use_profile(inner):
                assert get_active_profile() is inner
            assert get_active_profile() is outer
        finally:
            set_active_profile(None)

    def test_use_profile_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with use_profile(tuned_profile()):
                raise RuntimeError("boom")
        assert get_active_profile() is None


class TestDefaultPath:
    def test_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert default_profile_path() == tmp_path / "cache" / "tuning_profile.json"

    def test_home_fallback(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.setenv("HOME", str(tmp_path))
        assert (
            default_profile_path()
            == tmp_path / ".cache" / "repro" / "tuning_profile.json"
        )

"""Seeded byte-parity: tuning profiles and feedback never change results.

The acceptance property of the whole subsystem — every threshold a
profile can move, and every decision the feedback monitor can take, is
semantically inert.  These tests pin it at three layers: one batched
fitness call, a full seeded EA run, and the engagement bookkeeping
itself.
"""

import numpy as np
import pytest

from repro.core.config import CompressionConfig, EAParameters
from repro.core.fitness import BatchCompressionRateFitness
from repro.core.kernels import (
    BitpackKernel,
    kernel_unavailable_reason,
    resolve_kernel,
    select_kernel_name,
)
from repro.core.optimizer import EAMVOptimizer
from repro.ea.genome import random_genome
from repro.testdata.synthetic import SyntheticSpec, synthetic_test_set
from repro.tuning.feedback import MVCacheFeedback
from repro.tuning.profile import TuningProfile, use_profile

NATIVE_OK = kernel_unavailable_reason("native") is None
KERNELS = ("gemm", "bitpack", "scalar") + (("native",) if NATIVE_OK else ())

# Thresholds shifted hard in both directions: everything engages
# everywhere / nothing engages anywhere.  If any threshold leaked into
# results, one of these would break parity.
EAGER_PROFILE = TuningProfile(
    bitpack_min_distinct=1,
    bitpack_wide_min_distinct=1,
    scalar_max_work=1,
    mv_dedup_min_genomes=1,
    mv_dedup_min_table=1,
    mv_dedup_min_distinct=1,
    native_min_distinct=1 << 30,  # keep the array plumbing observable
    native_wide_min_distinct=1 << 30,
    bitpack_shard_size=16,
    huffman_lockstep_min_rows=1,
    mv_feedback_min_hit_rate=0.05,
)
LAZY_PROFILE = TuningProfile(
    bitpack_min_distinct=1 << 30,
    bitpack_wide_min_distinct=1 << 30,
    native_min_distinct=1 << 30,
    native_wide_min_distinct=1 << 30,
    scalar_max_work=1 << 30,
    mv_dedup_min_genomes=1 << 30,
    mv_dedup_min_table=1 << 30,
    mv_dedup_min_distinct=1 << 30,
    huffman_lockstep_min_rows=1 << 30,
    mv_feedback_min_hit_rate=0.95,
    mv_feedback_patience=1,
    mv_feedback_reprobe_period=2,
)


def small_workload():
    spec = SyntheticSpec(
        name="tuning-parity", n_patterns=24, pattern_bits=36,
        care_density=0.55, seed=11,
    )
    blocks = synthetic_test_set(spec).blocks(6)
    rng = np.random.default_rng(17)
    genomes = np.stack([random_genome(8 * 6, rng) for _ in range(24)])
    genomes[:, -6:] = 2  # pinned all-U MV
    return blocks, genomes


class TestBatchParity:
    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("profile", [None, EAGER_PROFILE, LAZY_PROFILE])
    def test_profiles_never_move_rates(self, kernel, profile):
        blocks, genomes = small_workload()
        reference = BatchCompressionRateFitness(
            blocks, n_vectors=8, block_length=6, mv_cache_size=0,
        ).evaluate_batch(genomes)
        tuned = BatchCompressionRateFitness(
            blocks, n_vectors=8, block_length=6,
            kernel=kernel, tuning=profile,
        ).evaluate_batch(genomes)
        assert (tuned == reference).all()

    @pytest.mark.parametrize("mv_feedback", [None, True, False])
    def test_feedback_modes_never_move_rates(self, mv_feedback):
        blocks, genomes = small_workload()
        reference = BatchCompressionRateFitness(
            blocks, n_vectors=8, block_length=6, mv_cache_size=0,
        ).evaluate_batch(genomes)
        fitness = BatchCompressionRateFitness(
            blocks, n_vectors=8, block_length=6,
            tuning=EAGER_PROFILE, mv_feedback=mv_feedback,
        )
        for _ in range(3):  # repeated generations: warm, maybe disengage
            assert (fitness.evaluate_batch(genomes) == reference).all()

    def test_active_profile_is_parity_safe_too(self):
        blocks, genomes = small_workload()
        reference = BatchCompressionRateFitness(
            blocks, n_vectors=8, block_length=6, mv_cache_size=0,
        ).evaluate_batch(genomes)
        with use_profile(EAGER_PROFILE):
            ambient = BatchCompressionRateFitness(
                blocks, n_vectors=8, block_length=6,
            )
            assert ambient.tuning is EAGER_PROFILE
            assert (ambient.evaluate_batch(genomes) == reference).all()


class TestSeededRunParity:
    CONFIG = dict(
        block_length=6, n_vectors=8, runs=2,
        ea=EAParameters(
            population_size=6, children_per_generation=4,
            stagnation_limit=8, max_evaluations=250,
        ),
    )

    def run_result(self, **overrides):
        spec = SyntheticSpec(
            name="tuning-run-parity", n_patterns=30, pattern_bits=30,
            care_density=0.5, seed=5,
        )
        blocks = synthetic_test_set(spec).blocks(6)
        config = CompressionConfig(**{**self.CONFIG, **overrides})
        return EAMVOptimizer(config, seed=99).optimize(blocks)

    def digest(self, result):
        return [
            (run.rate, run.mv_set.to_genome().tobytes())
            for run in result.runs
        ]

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_profiles_and_feedback_do_not_move_seeded_runs(self, kernel):
        reference = self.digest(self.run_result())
        variants = [
            dict(kernel=kernel, tuning=EAGER_PROFILE),
            dict(kernel=kernel, tuning=LAZY_PROFILE),
            dict(kernel=kernel, mv_feedback=True),
            dict(kernel=kernel, mv_feedback=False),
            dict(kernel=kernel, tuning=EAGER_PROFILE, mv_feedback=True),
            dict(kernel=kernel, tuning=LAZY_PROFILE, mv_feedback=False),
        ]
        for overrides in variants:
            assert self.digest(self.run_result(**overrides)) == reference, (
                f"seeded run diverged under {overrides}"
            )


class TestThresholdPlumbing:
    """Profiles must actually steer the decisions they claim to steer."""

    def test_select_kernel_honors_profile(self):
        # Shape that defaults route to bitpack (narrow lanes, D >= 256)
        # — or to native when this machine can compile it.
        assert select_kernel_name(32, 1024, 32, 12) == (
            "native" if NATIVE_OK else "bitpack"
        )
        assert (
            select_kernel_name(32, 1024, 32, 12, profile=LAZY_PROFILE)
            == "gemm"
        )
        assert select_kernel_name(32, 64, 32, 12) == (
            "native" if NATIVE_OK else "gemm"
        )
        assert (
            select_kernel_name(32, 64, 32, 12, profile=EAGER_PROFILE)
            == "bitpack"
        )

    def test_select_kernel_honors_active_profile(self):
        with use_profile(LAZY_PROFILE):
            assert select_kernel_name(32, 1024, 32, 12) == "gemm"
        assert select_kernel_name(32, 1024, 32, 12) == (
            "native" if NATIVE_OK else "bitpack"
        )

    def test_resolve_kernel_applies_profile_shard_size(self):
        kernel = resolve_kernel("bitpack", 32, 4096, 32, 12, profile=EAGER_PROFILE)
        assert isinstance(kernel, BitpackKernel)
        assert kernel._shard_size == 16
        untouched = resolve_kernel("bitpack", 32, 4096, 32, 12, profile=None)
        assert untouched._shard_size is None

    def test_dedup_engagement_honors_profile(self):
        blocks, genomes = small_workload()
        eager = BatchCompressionRateFitness(
            blocks, n_vectors=8, block_length=6, tuning=EAGER_PROFILE,
        )
        eager.evaluate_batch(genomes)
        assert eager.mv_cache_stats.rows_total > 0  # dedup path ran
        lazy = BatchCompressionRateFitness(
            blocks, n_vectors=8, block_length=6, tuning=LAZY_PROFILE,
        )
        lazy.evaluate_batch(genomes)
        assert lazy.mv_cache_stats.rows_total == 0  # static veto

    def test_feedback_disengages_and_reprobes_in_the_fitness(self):
        blocks, genomes = small_workload()
        monitor = MVCacheFeedback(
            min_hit_rate=1.0, patience=1, reprobe_period=2
        )
        fitness = BatchCompressionRateFitness(
            blocks, n_vectors=8, block_length=6,
            tuning=EAGER_PROFILE, mv_feedback=monitor,
        )
        rng = np.random.default_rng(3)

        def fresh_batch():
            batch = np.stack([random_genome(8 * 6, rng) for _ in range(24)])
            batch[:, -6:] = 2
            return batch

        fitness.evaluate_batch(fresh_batch())  # cold: hit rate < 1.0
        assert not monitor.engaged
        fitness.evaluate_batch(fresh_batch())  # fused (vetoed)
        fitness.evaluate_batch(fresh_batch())  # fused; reprobe window opens
        assert monitor.engaged
        stats = fitness.mv_cache_stats.feedback
        assert stats.batches_fused == 2
        assert stats.reprobes == 1
        assert stats.disengagements == 1

    def test_feedback_off_means_no_monitor(self):
        blocks, _ = small_workload()
        fitness = BatchCompressionRateFitness(
            blocks, n_vectors=8, block_length=6, mv_feedback=False,
        )
        assert fitness.mv_feedback is None
        assert fitness.mv_cache_stats.feedback is None

    def test_monitor_parameters_come_from_the_profile(self):
        blocks, _ = small_workload()
        fitness = BatchCompressionRateFitness(
            blocks, n_vectors=8, block_length=6, tuning=LAZY_PROFILE,
        )
        assert fitness.mv_feedback._min_hit_rate == 0.95
        assert fitness.mv_feedback._patience == 1

    def test_config_carries_profile_to_run_tasks(self):
        config = CompressionConfig(
            block_length=6, n_vectors=8, runs=1, tuning=EAGER_PROFILE,
            mv_feedback=False,
        )
        assert config.tuning is EAGER_PROFILE
        assert config.with_updates(runs=2).tuning is EAGER_PROFILE

    def test_config_rejects_non_profile_tuning(self):
        with pytest.raises(ValueError, match="tuning"):
            CompressionConfig(tuning={"bitpack_min_distinct": 5})

    def test_huffman_lockstep_override_is_parity_safe(self):
        from repro.coding.huffman import huffman_total_bits_batch

        rng = np.random.default_rng(8)
        freqs = rng.integers(0, 40, size=(130, 24))
        per_row = huffman_total_bits_batch(freqs, lockstep_min_rows=1 << 30)
        lockstep = huffman_total_bits_batch(freqs, lockstep_min_rows=1)
        default = huffman_total_bits_batch(freqs)
        assert (per_row == lockstep).all()
        assert (per_row == default).all()

"""The MVCacheFeedback engagement state machine."""

import pytest

from repro.tuning.feedback import MVCacheFeedback


class TestValidation:
    def test_rejects_bad_hit_rate(self):
        with pytest.raises(ValueError, match="min_hit_rate"):
            MVCacheFeedback(min_hit_rate=-0.1)

    def test_rejects_bad_patience(self):
        with pytest.raises(ValueError, match="patience"):
            MVCacheFeedback(patience=0)

    def test_rejects_bad_reprobe_period(self):
        with pytest.raises(ValueError, match="reprobe_period"):
            MVCacheFeedback(reprobe_period=0)


class TestEngagement:
    def test_starts_engaged(self):
        assert MVCacheFeedback().engaged

    def test_disengages_after_patience_consecutive_low_batches(self):
        monitor = MVCacheFeedback(min_hit_rate=0.5, patience=3)
        monitor.observe(hits=0, misses=10)
        monitor.observe(hits=0, misses=10)
        assert monitor.engaged  # 2 < patience
        monitor.observe(hits=0, misses=10)
        assert not monitor.engaged
        assert monitor.stats.disengagements == 1

    def test_healthy_batch_resets_the_streak(self):
        monitor = MVCacheFeedback(min_hit_rate=0.5, patience=2)
        monitor.observe(hits=0, misses=10)
        monitor.observe(hits=9, misses=1)  # healthy: streak resets
        monitor.observe(hits=0, misses=10)
        assert monitor.engaged
        assert monitor.stats.low_streak == 1

    def test_boundary_hit_rate_counts_as_healthy(self):
        monitor = MVCacheFeedback(min_hit_rate=0.5, patience=1)
        monitor.observe(hits=5, misses=5)  # exactly at break-even
        assert monitor.engaged

    def test_empty_batch_counts_as_healthy(self):
        monitor = MVCacheFeedback(min_hit_rate=0.9, patience=1)
        monitor.observe(hits=0, misses=0)
        assert monitor.engaged


class TestReprobe:
    def test_reengages_after_reprobe_period_fused_batches(self):
        monitor = MVCacheFeedback(min_hit_rate=0.5, patience=1, reprobe_period=3)
        monitor.observe(hits=0, misses=10)
        assert not monitor.engaged
        monitor.tick_fused()
        monitor.tick_fused()
        assert not monitor.engaged
        monitor.tick_fused()
        assert monitor.engaged  # re-probe window opens
        stats = monitor.stats
        assert stats.reprobes == 1
        assert stats.batches_fused == 3

    def test_reprobe_can_disengage_again(self):
        monitor = MVCacheFeedback(min_hit_rate=0.5, patience=1, reprobe_period=1)
        monitor.observe(hits=0, misses=10)
        monitor.tick_fused()
        assert monitor.engaged
        monitor.observe(hits=0, misses=10)  # the probe batch is still cold
        assert not monitor.engaged
        assert monitor.stats.disengagements == 2

    def test_single_probe_batch_is_decisive_even_with_patience(self):
        # The re-probe window opens with the low streak primed at
        # patience - 1: one still-cold probe batch disengages again
        # immediately — a hostile run pays one dedup batch per
        # reprobe_period, not `patience` of them.
        monitor = MVCacheFeedback(min_hit_rate=0.5, patience=3, reprobe_period=2)
        for _ in range(3):
            monitor.observe(hits=0, misses=10)
        assert not monitor.engaged
        monitor.tick_fused()
        monitor.tick_fused()
        assert monitor.engaged
        monitor.observe(hits=0, misses=10)  # the single probe batch
        assert not monitor.engaged
        assert monitor.stats.disengagements == 2

    def test_reprobe_can_stay_engaged_when_warm(self):
        monitor = MVCacheFeedback(min_hit_rate=0.5, patience=1, reprobe_period=1)
        monitor.observe(hits=0, misses=10)
        monitor.tick_fused()
        monitor.observe(hits=10, misses=0)  # converged: the probe hits
        assert monitor.engaged

    def test_tick_fused_is_noop_while_engaged(self):
        monitor = MVCacheFeedback()
        monitor.tick_fused()
        assert monitor.stats.batches_fused == 0
        assert monitor.engaged


class TestStats:
    def test_counters_accumulate(self):
        monitor = MVCacheFeedback(min_hit_rate=0.5, patience=2, reprobe_period=2)
        for _ in range(2):
            monitor.observe(hits=0, misses=4)
        monitor.tick_fused()
        monitor.tick_fused()
        stats = monitor.stats
        assert stats.batches_observed == 2
        assert stats.batches_fused == 2
        assert stats.disengagements == 1
        assert stats.reprobes == 1
        assert stats.engaged

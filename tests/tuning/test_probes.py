"""Probe determinism under a scripted clock, and the selection logic."""

import pytest

from repro.core.kernels import kernel_unavailable_reason
from repro.tuning.probes import (
    crossover_point,
    probe_huffman_lockstep,
    run_probes,
)
from repro.tuning.profile import (
    TuningProfile,
    current_fingerprint,
    fingerprint_matches,
)


class FakeClock:
    """Deterministic perf_counter stand-in: each reading advances by
    ``step``, so every timed interval measures exactly ``step`` seconds
    regardless of real wall time.  ``step`` defaults to a power of two
    so the accumulated float is exact and every interval compares
    equal to every other — true ties, no last-ulp noise."""

    def __init__(self, step: float = 0.5) -> None:
        self.now = 0.0
        self.step = step
        self.readings = 0

    def __call__(self) -> float:
        self.now += self.step
        self.readings += 1
        return self.now


class TestCrossoverPoint:
    def test_clean_crossover(self):
        points = [(64, 1.0, 2.0), (256, 1.0, 1.0), (1024, 1.0, 0.5)]
        assert crossover_point(points) == 256  # ties go to the challenger

    def test_never_wins(self):
        assert crossover_point([(64, 1.0, 2.0), (256, 1.0, 1.5)]) is None

    def test_always_wins(self):
        assert crossover_point([(64, 2.0, 1.0), (256, 2.0, 1.0)]) == 64

    def test_noisy_middle_win_does_not_count(self):
        # The challenger must keep winning through the largest probed x;
        # an isolated mid-range win (noise) is not a crossover.
        points = [(64, 1.0, 2.0), (256, 1.0, 0.5), (1024, 1.0, 1.5)]
        assert crossover_point(points) is None

    def test_regression_after_loss_restarts_from_later_point(self):
        points = [(64, 1.0, 0.5), (256, 1.0, 1.5), (1024, 1.0, 0.5)]
        assert crossover_point(points) == 1024

    def test_unsorted_input(self):
        points = [(1024, 1.0, 0.5), (64, 1.0, 2.0), (256, 1.0, 0.8)]
        assert crossover_point(points) == 256


class TestDeterminism:
    def test_same_clock_same_profile(self):
        first = run_probes(
            quick=True, repeats=1, timer=FakeClock(), created="pinned"
        )
        second = run_probes(
            quick=True, repeats=1, timer=FakeClock(), created="pinned"
        )
        assert first == second

    def test_profile_is_valid_for_this_machine(self):
        profile = run_probes(
            quick=True, repeats=1, timer=FakeClock(), created="pinned"
        )
        assert profile.version == TuningProfile().version
        assert fingerprint_matches(profile.fingerprint, current_fingerprint())
        assert profile.source.startswith("repro tune")
        assert profile.measurements  # raw probe timings recorded

    def test_constant_clock_ties_resolve_to_smallest_probed_shape(self):
        # Every interval measures exactly one step, so every contender
        # ties and the challenger wins from the smallest probed point —
        # the selection is a pure function of the clock readings.
        profile = run_probes(
            quick=True, repeats=1, timer=FakeClock(), created="pinned"
        )
        assert profile.bitpack_min_distinct == 128
        assert profile.bitpack_wide_min_distinct == 256
        if kernel_unavailable_reason("native") is None:
            # native probed: ties → challenger from the smallest point.
            assert profile.native_min_distinct == 128
            assert profile.native_wide_min_distinct == 256
        else:
            # no toolchain: the shipped defaults pass through unprobed.
            defaults = TuningProfile()
            assert profile.native_min_distinct == defaults.native_min_distinct
            assert (
                profile.native_wide_min_distinct
                == defaults.native_wide_min_distinct
            )
        assert profile.mv_dedup_min_genomes == 2
        assert profile.mv_dedup_min_table == 128
        assert profile.huffman_lockstep_min_rows == 16

    def test_probe_seconds_comes_from_the_injected_clock(self):
        clock = FakeClock(step=0.5)
        profile = run_probes(
            quick=True, repeats=1, timer=clock, created="pinned"
        )
        # started at reading 1, finished near the last reading — wall
        # seconds are whatever the scripted clock says, not real time.
        assert profile.probe_seconds == pytest.approx(
            0.5 * (clock.readings - 1), abs=1.0
        )

    def test_huffman_probe_reports_every_point(self):
        rows, measurements = probe_huffman_lockstep(
            quick=True, repeats=1, timer=FakeClock()
        )
        assert rows == 16  # constant clock: lockstep ties everywhere
        assert {name.split("/")[1] for name in measurements} == {
            "r16", "r32", "r64", "r96", "r128",
        }


@pytest.mark.slow
class TestRealProbes:
    """One real (wall-clock) quick probe pass — the `repro tune` core."""

    def test_quick_probes_produce_a_sane_profile(self):
        profile = run_probes(quick=True, repeats=1)
        assert profile.bitpack_min_distinct >= 1
        assert profile.mv_dedup_min_table >= 1
        assert 0.0 <= profile.mv_feedback_min_hit_rate <= 1.0
        assert profile.probe_seconds > 0
        # Probed on this machine, for this machine.
        assert fingerprint_matches(profile.fingerprint, current_fingerprint())
        assert profile.fingerprint.gemm_us > 0

"""Tests for the cross-request coalescer."""

import threading

import numpy as np
import pytest

from repro.serve.batching import BatchStats, Coalescer, QueueFullError

# A window so long the dispatcher never flushes on its own: flushes in
# these tests happen only via max_batch or an explicit stop(drain).
NEVER = 60_000.0


def row_sums(key, matrix):
    return matrix.sum(axis=1).astype(float)


class TestAdmission:
    def test_submit_before_start_is_rejected(self):
        coalescer = Coalescer(row_sums)
        with pytest.raises(QueueFullError):
            coalescer.submit("k", np.zeros((1, 4), dtype=np.int8))

    def test_queue_full_rejects_and_counts(self):
        coalescer = Coalescer(row_sums, window_ms=NEVER, max_queue=2)
        coalescer.start()
        try:
            one = coalescer.submit("k", np.ones((1, 4), dtype=np.int8))
            two = coalescer.submit("k", np.ones((2, 4), dtype=np.int8))
            with pytest.raises(QueueFullError):
                coalescer.submit("k", np.ones((1, 4), dtype=np.int8))
            assert coalescer.stats.rejected == 1
            assert coalescer.queue_depth == 2
        finally:
            coalescer.stop(drain=True)
        # Accepted requests still resolve through the drain flush.
        assert one.result(timeout=5).tolist() == [4.0]
        assert two.result(timeout=5).tolist() == [4.0, 4.0]

    def test_submit_after_stop_is_rejected(self):
        coalescer = Coalescer(row_sums)
        coalescer.start()
        coalescer.stop(drain=True)
        with pytest.raises(QueueFullError):
            coalescer.submit("k", np.zeros((1, 4), dtype=np.int8))


class TestFlushing:
    def test_window_flush(self):
        coalescer = Coalescer(row_sums, window_ms=20.0)
        coalescer.start()
        try:
            future = coalescer.submit("k", np.ones((2, 3), dtype=np.int8))
            assert future.result(timeout=5).tolist() == [3.0, 3.0]
            assert coalescer.stats.window_flushes == 1
            assert coalescer.queue_depth == 0
        finally:
            coalescer.stop(drain=True)

    def test_max_batch_flush_batches_all_requests(self):
        coalescer = Coalescer(row_sums, window_ms=NEVER, max_batch=3)
        coalescer.start()
        try:
            futures = [
                coalescer.submit("k", np.full((1, 4), fill, dtype=np.int8))
                for fill in (0, 1, 2)
            ]
            results = [f.result(timeout=5).tolist() for f in futures]
        finally:
            coalescer.stop(drain=True)
        assert results == [[0.0], [4.0], [8.0]]
        stats = coalescer.stats
        assert stats.size_flushes == 1
        assert stats.flushes == 1
        assert stats.occupancy_max == 3
        assert stats.batched_requests == 3
        assert stats.mean_occupancy == 3.0

    def test_mixed_keys_never_share_a_flush(self):
        calls = []

        def record(key, matrix):
            calls.append((key, matrix.copy()))
            return row_sums(key, matrix)

        coalescer = Coalescer(record, window_ms=NEVER, max_batch=2)
        coalescer.start()
        try:
            a1 = coalescer.submit("a", np.full((1, 2), 1, dtype=np.int8))
            b1 = coalescer.submit("b", np.full((1, 2), 2, dtype=np.int8))
            a2 = coalescer.submit("a", np.full((1, 2), 3, dtype=np.int8))
            b2 = coalescer.submit("b", np.full((1, 2), 4, dtype=np.int8))
            assert a1.result(timeout=5).tolist() == [2.0]
            assert a2.result(timeout=5).tolist() == [6.0]
            assert b1.result(timeout=5).tolist() == [4.0]
            assert b2.result(timeout=5).tolist() == [8.0]
        finally:
            coalescer.stop(drain=True)
        assert len(calls) == 2
        by_key = {key: matrix for key, matrix in calls}
        assert set(by_key) == {"a", "b"}
        assert by_key["a"].tolist() == [[1, 1], [3, 3]]
        assert by_key["b"].tolist() == [[2, 2], [4, 4]]

    def test_drain_flushes_queued_requests(self):
        coalescer = Coalescer(row_sums, window_ms=NEVER)
        coalescer.start()
        future = coalescer.submit("k", np.ones((1, 5), dtype=np.int8))
        coalescer.stop(drain=True)
        assert future.result(timeout=5).tolist() == [5.0]
        assert coalescer.stats.drain_flushes == 1

    def test_stop_without_drain_fails_queued_futures(self):
        coalescer = Coalescer(row_sums, window_ms=NEVER)
        coalescer.start()
        future = coalescer.submit("k", np.ones((1, 5), dtype=np.int8))
        coalescer.stop(drain=False)
        with pytest.raises(QueueFullError):
            future.result(timeout=5)

    def test_evaluate_failure_fans_to_every_waiter(self):
        def explode(key, matrix):
            raise RuntimeError("kernel fell over")

        coalescer = Coalescer(explode, window_ms=NEVER, max_batch=2)
        coalescer.start()
        try:
            one = coalescer.submit("k", np.zeros((1, 2), dtype=np.int8))
            two = coalescer.submit("k", np.zeros((1, 2), dtype=np.int8))
            for future in (one, two):
                with pytest.raises(RuntimeError, match="kernel fell over"):
                    future.result(timeout=5)
        finally:
            coalescer.stop(drain=False)


class TestParity:
    def test_coalesced_results_match_serial(self):
        """Any interleaving slices back to per-request serial results."""
        rng = np.random.default_rng(7)
        matrices = [
            rng.integers(0, 3, size=(rows, 6)).astype(np.int8)
            for rows in (1, 3, 2, 5, 1, 4, 2, 3)
        ]
        serial = [row_sums("k", matrix).tolist() for matrix in matrices]

        coalescer = Coalescer(row_sums, window_ms=NEVER, max_batch=len(matrices))
        coalescer.start()
        futures = [None] * len(matrices)
        barrier = threading.Barrier(len(matrices))

        def send(index):
            barrier.wait()
            futures[index] = coalescer.submit("k", matrices[index])

        threads = [
            threading.Thread(target=send, args=(i,))
            for i in range(len(matrices))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        try:
            coalesced = [f.result(timeout=5).tolist() for f in futures]
        finally:
            coalescer.stop(drain=True)
        # Submission order is nondeterministic, so compare by matrix:
        # each request got exactly its own rows back.
        for index, matrix in enumerate(matrices):
            assert coalesced[index] == row_sums("k", matrix).tolist()
        assert sorted(map(tuple, coalesced)) == sorted(map(tuple, serial))
        assert coalescer.stats.flushes >= 1


class TestStats:
    def test_mean_occupancy_before_any_flush(self):
        assert BatchStats().mean_occupancy == 0.0

    def test_as_dict_fields(self):
        stats = BatchStats().as_dict(queue_depth=4)
        assert stats["queue_depth"] == 4
        for field in (
            "submitted",
            "rejected",
            "flushes",
            "window_flushes",
            "size_flushes",
            "drain_flushes",
            "batched_requests",
            "mean_occupancy",
            "max_occupancy",
        ):
            assert field in stats

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            Coalescer(row_sums, window_ms=-1.0)
        with pytest.raises(ValueError):
            Coalescer(row_sums, max_batch=0)
        with pytest.raises(ValueError):
            Coalescer(row_sums, max_queue=0)

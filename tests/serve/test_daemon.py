"""End-to-end tests for the HTTP daemon: endpoints, parity, backpressure."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.serve.daemon import ServeDaemon
from repro.serve.protocol import canonical_json
from repro.serve.service import CompressionService
from repro.serve.state import WarmRegistry

TABLE = {
    "patterns": ["01X10X", "X10011", "110100", "0XX01X"],
    "block_length": 3,
    "name": "daemon-test",
}

FITNESS_BODIES = [
    {"table": TABLE, "n_vectors": 3, "genomes": ["01U1U0UUU"]},
    {"table": TABLE, "n_vectors": 3, "genomes": ["UUUUUUUUU", "0101UU101"]},
    {"table": TABLE, "n_vectors": 3, "genomes": ["111000UUU"]},
]

COMPRESS_BODY = {
    "table": TABLE,
    "seed": 23,
    "config": {
        "n_vectors": 3,
        "runs": 2,
        "ea": {
            "population_size": 8,
            "children_per_generation": 8,
            "max_generations": 3,
        },
    },
}


def make_service():
    return CompressionService(WarmRegistry(), kernel="bitpack")


def http(address, path, body=None, method=None):
    """One request; returns ``(status, raw_bytes)`` without raising."""
    host, port = address
    url = f"http://{host}:{port}{path}"
    data = None if body is None else json.dumps(body).encode()
    request = urllib.request.Request(
        url,
        data=data,
        method=method or ("POST" if data is not None else "GET"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


@pytest.fixture
def daemon():
    instance = ServeDaemon(
        make_service(),
        port=0,
        batch_window_ms=10_000.0,  # flush only via max_batch in tests
        max_batch=len(FITNESS_BODIES),
    )
    instance.start()
    yield instance
    if not instance.draining:
        instance.shutdown(drain=True)


class TestEndpoints:
    def test_healthz(self, daemon):
        status, body = http(daemon.address, "/healthz")
        assert status == 200
        assert json.loads(body) == {"status": "ok"}

    def test_unknown_paths_are_404(self, daemon):
        assert http(daemon.address, "/nope")[0] == 404
        assert http(daemon.address, "/nope", body={})[0] == 404

    def test_tables_roundtrip(self, daemon):
        status, body = http(daemon.address, "/tables", TABLE)
        assert status == 200
        payload = json.loads(body)
        assert payload["block_length"] == 3
        # The response is canonical-JSON rendered.
        assert body == canonical_json(payload)

    def test_fitness_unknown_digest_is_404(self, daemon):
        body = dict(FITNESS_BODIES[0], table="e" * 64)
        status, raw = http(daemon.address, "/fitness", body)
        assert status == 404
        assert "digest" in json.loads(raw)["error"]

    def test_malformed_json_is_400(self, daemon):
        host, port = daemon.address
        request = urllib.request.Request(
            f"http://{host}:{port}/fitness",
            data=b"{not json",
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=30)
        assert info.value.code == 400

    def test_missing_field_is_400(self, daemon):
        status, raw = http(daemon.address, "/fitness", {"table": TABLE})
        assert status == 400
        assert "n_vectors" in json.loads(raw)["error"]

    def test_empty_body_is_400(self, daemon):
        status, _ = http(daemon.address, "/compress", method="POST")
        assert status == 400


class TestParity:
    def test_concurrent_fitness_is_byte_identical_to_offline(self, daemon):
        """The acceptance pin: served bytes == offline bytes, with the
        batch window held open so all requests coalesce into ONE flush."""
        results = [None] * len(FITNESS_BODIES)
        barrier = threading.Barrier(len(FITNESS_BODIES))

        def send(index):
            barrier.wait()
            results[index] = http(
                daemon.address, "/fitness", FITNESS_BODIES[index]
            )

        threads = [
            threading.Thread(target=send, args=(i,))
            for i in range(len(FITNESS_BODIES))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        offline = make_service()  # cold, serial, no daemon
        for (status, raw), body in zip(results, FITNESS_BODIES):
            assert status == 200
            assert raw == canonical_json(offline.run_fitness(body))

        stats = json.loads(http(daemon.address, "/stats")[1])
        assert stats["batch"]["max_occupancy"] == len(FITNESS_BODIES)
        assert stats["batch"]["batched_requests"] == len(FITNESS_BODIES)
        assert stats["requests"]["fitness"] == len(FITNESS_BODIES)

    def test_compress_is_byte_identical_to_offline(self, daemon):
        status, raw = http(daemon.address, "/compress", COMPRESS_BODY)
        assert status == 200
        assert raw == canonical_json(make_service().run_compress(COMPRESS_BODY))

    def test_warm_repeat_is_byte_identical(self, daemon):
        first = http(daemon.address, "/compress", COMPRESS_BODY)
        second = http(daemon.address, "/compress", COMPRESS_BODY)
        assert first == second


class TestStats:
    def test_stats_fields(self, daemon):
        http(daemon.address, "/tables", TABLE)
        status, raw = http(daemon.address, "/stats")
        assert status == 200
        stats = json.loads(raw)
        assert stats["draining"] is False
        assert stats["uptime_s"] >= 0
        for field in ("requests", "batch", "tables", "native", "kernels"):
            assert field in stats
        assert set(stats["native"]) == {"available", "reason", "warned"}
        (digest,) = stats["tables"]
        assert stats["tables"][digest]["mv_cache"]["enabled"] is True


class TestDegradation:
    def test_timeout_is_504_and_counted(self):
        daemon = ServeDaemon(make_service(), port=0, request_timeout=1e-6)
        daemon.start()
        try:
            status, raw = http(daemon.address, "/compress", COMPRESS_BODY)
            assert status == 504
            assert "abandoned" in json.loads(raw)["error"]
            stats = json.loads(http(daemon.address, "/stats")[1])
            assert stats["requests"]["timeouts"] == 1
        finally:
            daemon.shutdown(drain=True)

    def test_draining_daemon_answers_503(self):
        # Shutdown stops the accept loop, so drain-mode refusal is
        # exercised by flagging a live daemon as draining directly.
        daemon = ServeDaemon(make_service(), port=0)
        daemon.start()
        try:
            daemon._draining = True
            status, raw = http(daemon.address, "/fitness", FITNESS_BODIES[0])
            assert status == 503
            assert json.loads(http(daemon.address, "/stats")[1])["draining"]
        finally:
            daemon.shutdown(drain=True)

    def test_compress_backlog_full_is_429(self):
        daemon = ServeDaemon(make_service(), port=0, max_queue=1)
        daemon.start()
        try:
            daemon._compress_in_flight = 1  # a long run holds the slot
            status, raw = http(daemon.address, "/compress", COMPRESS_BODY)
            assert status == 429
            assert "backlog" in json.loads(raw)["error"]
        finally:
            daemon._compress_in_flight = 0
            daemon.shutdown(drain=True)

    def test_shutdown_is_idempotent(self):
        daemon = ServeDaemon(make_service(), port=0)
        daemon.start()
        daemon.shutdown(drain=True)
        daemon.shutdown(drain=True)

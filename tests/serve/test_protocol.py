"""Tests for the serve wire protocol primitives."""

import numpy as np
import pytest

from repro.core.encoding import EncodingStrategy
from repro.core.matching import MVSet
from repro.serve.protocol import (
    ProtocolError,
    canonical_json,
    decode_genomes,
    encode_mv_set,
    parse_strategy,
    require,
)


class TestCanonicalJson:
    def test_key_order_is_irrelevant(self):
        a = canonical_json({"b": 1, "a": [1.5, "x"]})
        b = canonical_json({"a": [1.5, "x"], "b": 1})
        assert a == b

    def test_no_whitespace_one_trailing_newline(self):
        body = canonical_json({"k": [1, 2]})
        assert body == b'{"k":[1,2]}\n'

    def test_float_rendering_is_repr_stable(self):
        value = 100.0 * (96 - 23) / 96
        assert canonical_json(value) == (repr(value) + "\n").encode()


class TestRequire:
    def test_missing_field(self):
        with pytest.raises(ProtocolError) as info:
            require({}, "seed", int)
        assert info.value.status == 400
        assert "seed" in info.value.message

    def test_wrong_type(self):
        with pytest.raises(ProtocolError):
            require({"seed": "7"}, "seed", int)

    def test_bool_is_not_int(self):
        with pytest.raises(ProtocolError):
            require({"seed": True}, "seed", int)

    def test_non_object_body(self):
        with pytest.raises(ProtocolError):
            require(["not", "a", "dict"], "seed", int)


class TestStrategy:
    def test_known(self):
        assert parse_strategy("huffman") is EncodingStrategy.HUFFMAN

    def test_unknown_is_400(self):
        with pytest.raises(ProtocolError) as info:
            parse_strategy("zstd")
        assert info.value.status == 400

    def test_fixed_is_rejected(self):
        with pytest.raises(ProtocolError):
            parse_strategy("fixed")


class TestGenomeCodec:
    def test_round_trip_through_mv_set(self):
        mv_set = MVSet.from_strings(["01U", "UUU"])
        texts = encode_mv_set(mv_set)
        assert texts == ["01U", "UUU"]
        matrix = decode_genomes(["".join(texts)], 6)
        np.testing.assert_array_equal(
            matrix[0], mv_set.to_genome().astype(np.int8)
        )

    def test_x_and_dash_accepted_on_input(self):
        matrix = decode_genomes(["01X-"], 4)
        assert matrix.tolist() == [[0, 1, 2, 2]]

    def test_length_mismatch_is_400(self):
        with pytest.raises(ProtocolError) as info:
            decode_genomes(["01U"], 6)
        assert info.value.status == 400

    def test_bad_character_is_400(self):
        with pytest.raises(ProtocolError):
            decode_genomes(["01Z"], 3)

    def test_empty_list_is_400(self):
        with pytest.raises(ProtocolError):
            decode_genomes([], 3)

"""Tests for the warm registry and the shared request service."""

import numpy as np
import pytest

from repro.core.encoding import EncodingStrategy
from repro.serve.protocol import ProtocolError, canonical_json
from repro.serve.service import CompressionService
from repro.serve.state import FitnessKey, WarmRegistry

PATTERNS = ["01X10X", "X10011", "110100", "0XX01X"]
BLOCK_LENGTH = 3

TABLE = {
    "patterns": PATTERNS,
    "block_length": BLOCK_LENGTH,
    "name": "unit",
}

FITNESS_BODY = {
    "table": TABLE,
    "n_vectors": 3,
    "genomes": ["01U1U0UUU", "UUUUUUUUU", "0101UU101"],
}

COMPRESS_BODY = {
    "table": TABLE,
    "seed": 17,
    "config": {
        "n_vectors": 3,
        "runs": 2,
        "ea": {
            "population_size": 8,
            "children_per_generation": 8,
            "max_generations": 3,
        },
    },
}


def make_service():
    return CompressionService(WarmRegistry(), kernel="bitpack")


class TestRegistry:
    def test_register_is_idempotent_by_digest(self):
        service = make_service()
        first = service.register_table(TABLE)
        second = service.register_table(dict(TABLE, name="other"))
        assert first["digest"] == second["digest"]
        assert service.registry.digests() == [first["digest"]]
        # The warm entry (and its shared cache) survived re-registration.
        entry = service.registry.get(first["digest"])
        assert entry.name == "unit"

    def test_describe_payload(self):
        payload = make_service().register_table(TABLE)
        assert payload["block_length"] == BLOCK_LENGTH
        assert payload["n_blocks"] * BLOCK_LENGTH >= payload["original_bits"]
        assert payload["n_distinct"] <= payload["n_blocks"]
        assert len(payload["digest"]) == 64

    def test_engine_reuse_and_shared_cache(self):
        service = make_service()
        digest = service.register_table(TABLE)["digest"]
        entry = service.registry.get(digest)
        key = FitnessKey(
            digest=digest,
            n_vectors=3,
            block_length=BLOCK_LENGTH,
            strategy=EncodingStrategy.HUFFMAN,
            kernel="bitpack",
        )
        engine = service.registry.engine_for(key)
        assert service.registry.engine_for(key) is engine
        assert engine.mv_cache is entry.mv_cache
        other = service.registry.engine_for(
            FitnessKey(
                digest=digest,
                n_vectors=4,
                block_length=BLOCK_LENGTH,
                strategy=EncodingStrategy.HUFFMAN,
                kernel="bitpack",
            )
        )
        assert other is not engine
        assert other.mv_cache is entry.mv_cache
        assert len(entry.engines) == 2

    def test_engine_for_unknown_digest(self):
        with pytest.raises(KeyError):
            make_service().registry.engine_for(
                FitnessKey(
                    digest="0" * 64,
                    n_vectors=3,
                    block_length=3,
                    strategy=EncodingStrategy.HUFFMAN,
                    kernel="bitpack",
                )
            )

    def test_stats_shape(self):
        service = make_service()
        digest = service.register_table(TABLE)["digest"]
        service.run_fitness(FITNESS_BODY)
        stats = service.registry.stats()
        assert digest in stats
        table_stats = stats[digest]
        assert table_stats["fitness_requests"] == 1
        assert table_stats["engines"] == 1
        cache_stats = table_stats["mv_cache"]
        assert cache_stats["enabled"] is True
        for field in ("policy", "hits", "misses", "hit_rate", "capacity"):
            assert field in cache_stats


class TestValidation:
    def test_unknown_digest_is_404(self):
        with pytest.raises(ProtocolError) as info:
            make_service().run_fitness(dict(FITNESS_BODY, table="f" * 64))
        assert info.value.status == 404

    def test_bad_table_type_is_400(self):
        with pytest.raises(ProtocolError) as info:
            make_service().run_fitness(dict(FITNESS_BODY, table=7))
        assert info.value.status == 400

    def test_unknown_config_field_is_400(self):
        body = dict(COMPRESS_BODY, config={"n_vectros": 3})
        with pytest.raises(ProtocolError, match="n_vectros"):
            make_service().run_compress(body)

    def test_unknown_ea_field_is_400(self):
        body = dict(COMPRESS_BODY, config={"ea": {"pop_size": 8}})
        with pytest.raises(ProtocolError, match="pop_size"):
            make_service().run_compress(body)

    def test_bad_strategy_is_400(self):
        with pytest.raises(ProtocolError) as info:
            make_service().run_fitness(dict(FITNESS_BODY, strategy="fixed"))
        assert info.value.status == 400

    def test_genome_length_mismatch_is_400(self):
        body = dict(FITNESS_BODY, genomes=["01U"])
        with pytest.raises(ProtocolError) as info:
            make_service().run_fitness(body)
        assert info.value.status == 400

    def test_missing_seed_is_400(self):
        body = {k: v for k, v in COMPRESS_BODY.items() if k != "seed"}
        with pytest.raises(ProtocolError, match="seed"):
            make_service().run_compress(body)

    def test_bad_path_table_is_400(self):
        with pytest.raises(ProtocolError) as info:
            make_service().register_table({"path": "/no/such/table.npz"})
        assert info.value.status == 400


class TestFitnessParity:
    def test_digest_and_inline_table_give_identical_bytes(self):
        service = make_service()
        digest = service.register_table(TABLE)["digest"]
        by_digest = service.run_fitness(dict(FITNESS_BODY, table=digest))
        inline = service.run_fitness(FITNESS_BODY)
        assert canonical_json(by_digest) == canonical_json(inline)

    def test_warm_service_matches_cold_service(self):
        warm = make_service()
        for _ in range(3):  # warms the shared MV cache between calls
            warm_payload = warm.run_fitness(FITNESS_BODY)
        cold_payload = make_service().run_fitness(FITNESS_BODY)
        assert canonical_json(warm_payload) == canonical_json(cold_payload)

    def test_stacked_evaluation_slices_to_per_request_rates(self):
        """The coalescer's core assumption, pinned at the service level:
        pricing a concatenated matrix equals pricing each part."""
        service = make_service()
        key, matrix = service.parse_fitness(FITNESS_BODY)
        singles = [
            service.evaluate(key, matrix[i : i + 1]) for i in range(len(matrix))
        ]
        stacked = service.evaluate(key, matrix)
        np.testing.assert_array_equal(stacked, np.concatenate(singles))


class TestCompress:
    def test_same_body_is_deterministic_and_warm_inert(self):
        warm = make_service()
        first = warm.run_compress(COMPRESS_BODY)
        second = warm.run_compress(COMPRESS_BODY)  # warm cache this time
        cold = make_service().run_compress(COMPRESS_BODY)
        assert canonical_json(first) == canonical_json(second)
        assert canonical_json(first) == canonical_json(cold)

    def test_payload_shape(self):
        payload = make_service().run_compress(COMPRESS_BODY)
        assert payload["seed"] == 17
        assert payload["config"]["runs"] == 2
        assert len(payload["runs"]) == 2
        # Higher rate = better compression; the best run tops the mean.
        assert payload["best_rate"] >= payload["mean_rate"] - 1e-12
        best = payload["runs"][payload["best_run"]]
        assert best["rate"] == payload["best_rate"]
        for text in payload["best_mv_set"]:
            assert len(text) == BLOCK_LENGTH
            assert set(text) <= set("01U")

    def test_different_seeds_may_differ_but_are_each_stable(self):
        service = make_service()
        a = service.run_compress(COMPRESS_BODY)
        b = service.run_compress(dict(COMPRESS_BODY, seed=18))
        assert canonical_json(a) == canonical_json(
            make_service().run_compress(COMPRESS_BODY)
        )
        assert canonical_json(b) == canonical_json(
            make_service().run_compress(dict(COMPRESS_BODY, seed=18))
        )

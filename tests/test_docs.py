"""Documentation integrity: the docs-link checker passes on the repo.

The same check runs in the CI lint lane
(``python tools/check_doc_links.py``); this wrapper keeps it in tier-1
so a broken relative link fails locally before CI.
"""

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_doc_links", REPO_ROOT / "tools" / "check_doc_links.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("check_doc_links", module)
    spec.loader.exec_module(module)
    return module


class TestDocLinks:
    def test_readme_and_docs_links_resolve(self):
        checker = _load_checker()
        files = checker.iter_doc_files(REPO_ROOT)
        assert any(path.name == "README.md" for path in files)
        problems = {
            path.name: checker.broken_links(path, REPO_ROOT) for path in files
        }
        assert all(not broken for broken in problems.values()), problems

    def test_required_docs_exist(self):
        for name in ("architecture.md", "multi-objective.md", "cache-format.md",
                     "native-kernel.md", "serve.md"):
            assert (REPO_ROOT / "docs" / name).is_file(), name

    def test_checker_flags_broken_link(self, tmp_path):
        checker = _load_checker()
        (tmp_path / "docs").mkdir()
        page = tmp_path / "README.md"
        page.write_text(
            "[ok](docs/real.md) [bad](docs/missing.md) "
            "[ext](https://example.com) [anchor](#x)\n"
        )
        (tmp_path / "docs" / "real.md").write_text("hi\n")
        broken = checker.broken_links(page, tmp_path)
        assert [target for _, target in broken] == ["docs/missing.md"]

    def test_every_example_has_module_docstring(self):
        import ast

        examples = sorted((REPO_ROOT / "examples").glob("*.py"))
        assert examples
        for path in examples:
            tree = ast.parse(path.read_text())
            assert ast.get_docstring(tree), f"{path.name} lacks a docstring"

"""Unit tests for the netlist data structure."""

import pytest

from repro.circuits.netlist import Gate, GateType, Netlist, NetlistError


def tiny_netlist() -> Netlist:
    return Netlist(
        name="tiny",
        inputs=["a", "b"],
        outputs=["y"],
        gates=[
            Gate("n1", GateType.NAND, ("a", "b")),
            Gate("y", GateType.NOT, ("n1",)),
        ],
    )


class TestGate:
    def test_not_requires_single_input(self):
        with pytest.raises(NetlistError):
            Gate("y", GateType.NOT, ("a", "b"))

    def test_xor_requires_two_inputs(self):
        with pytest.raises(NetlistError):
            Gate("y", GateType.XOR, ("a",))

    def test_no_inputs_rejected(self):
        with pytest.raises(NetlistError):
            Gate("y", GateType.AND, ())

    def test_unnamed_output_rejected(self):
        with pytest.raises(NetlistError):
            Gate("", GateType.AND, ("a", "b"))


class TestGateType:
    def test_controlling_values(self):
        assert GateType.AND.controlling_value == 0
        assert GateType.NAND.controlling_value == 0
        assert GateType.OR.controlling_value == 1
        assert GateType.NOR.controlling_value == 1
        assert GateType.XOR.controlling_value is None
        assert GateType.NOT.controlling_value is None

    def test_inversion_flags(self):
        assert GateType.NAND.inverting
        assert GateType.NOR.inverting
        assert GateType.NOT.inverting
        assert GateType.XNOR.inverting
        assert not GateType.AND.inverting
        assert not GateType.BUF.inverting


class TestNetlistStructure:
    def test_topological_order_respects_dependencies(self):
        netlist = tiny_netlist()
        order = [gate.output for gate in netlist.topological_order()]
        assert order.index("n1") < order.index("y")

    def test_double_driver_rejected(self):
        with pytest.raises(NetlistError):
            Netlist(
                "bad",
                inputs=["a"],
                outputs=["y"],
                gates=[
                    Gate("y", GateType.BUF, ("a",)),
                    Gate("y", GateType.NOT, ("a",)),
                ],
            )

    def test_driving_an_input_rejected(self):
        with pytest.raises(NetlistError):
            Netlist(
                "bad",
                inputs=["a"],
                outputs=["a"],
                gates=[Gate("a", GateType.NOT, ("a",))],
            )

    def test_undriven_net_rejected(self):
        with pytest.raises(NetlistError):
            Netlist(
                "bad",
                inputs=["a"],
                outputs=["y"],
                gates=[Gate("y", GateType.AND, ("a", "ghost"))],
            )

    def test_undriven_output_rejected(self):
        with pytest.raises(NetlistError):
            Netlist("bad", inputs=["a"], outputs=["ghost"], gates=[])

    def test_combinational_loop_rejected(self):
        with pytest.raises(NetlistError):
            Netlist(
                "loop",
                inputs=["a"],
                outputs=["y"],
                gates=[
                    Gate("x", GateType.AND, ("a", "y")),
                    Gate("y", GateType.NOT, ("x",)),
                ],
            )

    def test_duplicate_inputs_rejected(self):
        with pytest.raises(NetlistError):
            Netlist("bad", inputs=["a", "a"], outputs=[], gates=[])


class TestNetlistQueries:
    def test_fanout(self):
        netlist = tiny_netlist()
        assert netlist.fanout("a") == ("n1",)
        assert netlist.fanout("n1") == ("y",)
        assert netlist.fanout("y") == ()

    def test_fanout_cone(self):
        netlist = tiny_netlist()
        assert netlist.fanout_cone("a") == {"a", "n1", "y"}
        assert netlist.fanout_cone("y") == {"y"}

    def test_levels_and_depth(self):
        netlist = tiny_netlist()
        levels = netlist.levels()
        assert levels["a"] == 0
        assert levels["n1"] == 1
        assert levels["y"] == 2
        assert netlist.depth() == 2

    def test_all_nets_inputs_first(self):
        netlist = tiny_netlist()
        assert netlist.all_nets()[:2] == ("a", "b")
        assert set(netlist.all_nets()) == {"a", "b", "n1", "y"}

    def test_n_gates(self):
        assert tiny_netlist().n_gates == 2

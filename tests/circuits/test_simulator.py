"""Unit and property tests for 2- and 3-valued simulation."""

import itertools

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.circuits.bench_parser import parse_bench
from repro.circuits.library import load_circuit
from repro.circuits.netlist import GateType
from repro.circuits.simulator import evaluate_gate3, simulate3, simulate_patterns
from repro.core.trits import DC, ONE, ZERO


class TestGateEvaluation3V:
    def test_and_truth_table(self):
        assert evaluate_gate3(GateType.AND, (1, 1)) == 1
        assert evaluate_gate3(GateType.AND, (1, 0)) == 0
        assert evaluate_gate3(GateType.AND, (0, DC)) == 0  # controlled
        assert evaluate_gate3(GateType.AND, (1, DC)) == DC

    def test_or_truth_table(self):
        assert evaluate_gate3(GateType.OR, (0, 0)) == 0
        assert evaluate_gate3(GateType.OR, (1, DC)) == 1  # controlled
        assert evaluate_gate3(GateType.OR, (0, DC)) == DC

    def test_xor_with_x_is_x(self):
        assert evaluate_gate3(GateType.XOR, (1, DC)) == DC
        assert evaluate_gate3(GateType.XOR, (1, 0)) == 1
        assert evaluate_gate3(GateType.XNOR, (1, 1)) == 1

    def test_not_and_buf(self):
        assert evaluate_gate3(GateType.NOT, (0,)) == 1
        assert evaluate_gate3(GateType.NOT, (DC,)) == DC
        assert evaluate_gate3(GateType.BUF, (1,)) == 1

    @pytest.mark.parametrize(
        "gate_type",
        [GateType.AND, GateType.NAND, GateType.OR, GateType.NOR, GateType.XOR],
    )
    def test_three_valued_is_conservative(self, gate_type):
        """If the 3-valued result is specified, every completion of the
        X inputs yields that same binary value."""
        for values in itertools.product((ZERO, ONE, DC), repeat=2):
            result = evaluate_gate3(gate_type, values)
            if result == DC:
                continue
            completions = itertools.product(
                *[(v,) if v != DC else (0, 1) for v in values]
            )
            for completion in completions:
                assert evaluate_gate3(gate_type, completion) == result


class TestSimulate3:
    def test_c17_known_vector(self):
        c17 = load_circuit("c17")
        values = simulate3(
            c17, {"G1": 1, "G2": 1, "G3": 1, "G6": 1, "G7": 1}
        )
        # G10=NAND(1,1)=0, G11=NAND(1,1)=0, G16=NAND(1,0)=1,
        # G19=NAND(0,1)=1, G22=NAND(0,1)=1, G23=NAND(1,1)=0.
        assert values["G22"] == 1
        assert values["G23"] == 0

    def test_missing_inputs_default_to_x(self):
        c17 = load_circuit("c17")
        values = simulate3(c17, {})
        assert values["G22"] == DC

    def test_partial_cube_controls_outputs(self):
        netlist = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)")
        assert simulate3(netlist, {"a": 0})["y"] == 0

    def test_forced_value_injects_fault(self):
        netlist = parse_bench("INPUT(a)\nOUTPUT(y)\ny = BUF(a)")
        values = simulate3(netlist, {"a": 0}, forced={"y": 1})
        assert values["y"] == 1


class TestSimulatePatterns:
    def test_shape_validation(self):
        c17 = load_circuit("c17")
        with pytest.raises(ValueError):
            simulate_patterns(c17, np.zeros((3, 4), dtype=bool))

    def test_matches_three_valued_on_specified_patterns(self):
        c17 = load_circuit("c17")
        rng = np.random.default_rng(3)
        patterns = rng.random((64, 5)) < 0.5
        parallel = simulate_patterns(c17, patterns)
        for row in range(8):  # spot-check a few rows exhaustively
            cube = {
                net: int(patterns[row, col])
                for col, net in enumerate(c17.inputs)
            }
            serial = simulate3(c17, cube)
            for net in c17.all_nets():
                assert bool(parallel[net][row]) == bool(serial[net])

    @given(st.integers(0, 2**31 - 1))
    def test_parallel_consistency_on_random_netlist(self, seed):
        from repro.circuits.generator import random_netlist

        netlist = random_netlist(6, 20, seed=seed % 1000)
        rng = np.random.default_rng(seed)
        patterns = rng.random((4, 6)) < 0.5
        parallel = simulate_patterns(netlist, patterns)
        cube = {
            net: int(patterns[0, col]) for col, net in enumerate(netlist.inputs)
        }
        serial = simulate3(netlist, cube)
        for po in netlist.outputs:
            assert bool(parallel[po][0]) == bool(serial[po])

"""Unit tests for the .bench reader/writer."""

import pytest

from repro.circuits.bench_parser import parse_bench, write_bench
from repro.circuits.library import C17_BENCH, S27_BENCH
from repro.circuits.netlist import GateType, NetlistError


class TestParsing:
    def test_c17_structure(self):
        netlist = parse_bench(C17_BENCH, name="c17")
        assert len(netlist.inputs) == 5
        assert len(netlist.outputs) == 2
        assert netlist.n_gates == 6
        assert all(
            g.gate_type is GateType.NAND for g in netlist.topological_order()
        )

    def test_comments_and_blank_lines_ignored(self):
        netlist = parse_bench(
            """
            # a comment
            INPUT(a)

            OUTPUT(y)
            y = NOT(a)   # trailing comment
            """
        )
        assert netlist.n_gates == 1

    def test_case_insensitive_keywords(self):
        netlist = parse_bench("input(a)\noutput(y)\ny = not(a)")
        assert netlist.inputs == ("a",)

    def test_gate_aliases(self):
        netlist = parse_bench(
            "INPUT(a)\nOUTPUT(y)\nn = INV(a)\ny = BUFF(n)"
        )
        types = {g.output: g.gate_type for g in netlist.topological_order()}
        assert types["n"] is GateType.NOT
        assert types["y"] is GateType.BUF

    def test_unknown_gate_type_rejected(self):
        with pytest.raises(NetlistError):
            parse_bench("INPUT(a)\nOUTPUT(y)\ny = MAJ(a, a, a)")

    def test_unparsable_line_rejected(self):
        with pytest.raises(NetlistError):
            parse_bench("INPUT(a)\nnot a line")

    def test_multi_input_dff_rejected(self):
        with pytest.raises(NetlistError):
            parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(q)\nq = DFF(a, b)")


class TestScanConversion:
    def test_s27_full_scan_shape(self):
        """3 DFFs: 4 PIs + 3 pseudo-PIs, 1 PO + 3 pseudo-POs."""
        netlist = parse_bench(S27_BENCH, name="s27")
        assert len(netlist.inputs) == 7
        assert set(netlist.inputs) >= {"G5", "G6", "G7"}
        assert len(netlist.outputs) == 4
        assert set(netlist.outputs) >= {"G10", "G11", "G13"}

    def test_ff_output_not_driven_by_gate(self):
        netlist = parse_bench(S27_BENCH)
        assert "G5" not in netlist.gates

    def test_combinational_core_is_acyclic(self):
        netlist = parse_bench(S27_BENCH)
        order = [g.output for g in netlist.topological_order()]
        assert len(order) == netlist.n_gates


class TestWriter:
    def test_roundtrip_c17(self):
        original = parse_bench(C17_BENCH, name="c17")
        reparsed = parse_bench(write_bench(original), name="c17")
        assert reparsed.inputs == original.inputs
        assert set(reparsed.outputs) == set(original.outputs)
        assert reparsed.gates.keys() == original.gates.keys()
        for net, gate in original.gates.items():
            assert reparsed.gates[net].gate_type is gate.gate_type
            assert reparsed.gates[net].inputs == gate.inputs

    def test_roundtrip_s27_core(self):
        original = parse_bench(S27_BENCH, name="s27")
        reparsed = parse_bench(write_bench(original), name="s27")
        assert set(reparsed.inputs) == set(original.inputs)
        assert reparsed.gates.keys() == original.gates.keys()

"""Unit tests for circuit generation, the library, and path enumeration."""

import pytest

from repro.circuits.generator import random_netlist
from repro.circuits.library import available_circuits, load_circuit
from repro.circuits.paths import Path, count_paths, enumerate_paths


class TestGenerator:
    def test_deterministic_under_seed(self):
        first = random_netlist(10, 50, seed=5)
        second = random_netlist(10, 50, seed=5)
        assert first.gates.keys() == second.gates.keys()
        for net in first.gates:
            assert first.gates[net].inputs == second.gates[net].inputs
            assert first.gates[net].gate_type is second.gates[net].gate_type

    def test_different_seeds_differ(self):
        first = random_netlist(10, 50, seed=1)
        second = random_netlist(10, 50, seed=2)
        different = any(
            first.gates[n].inputs != second.gates[n].inputs for n in first.gates
        )
        assert different

    def test_requested_shape(self):
        netlist = random_netlist(7, 33, seed=0)
        assert len(netlist.inputs) == 7
        assert netlist.n_gates == 33

    def test_outputs_exist(self):
        netlist = random_netlist(5, 20, seed=9)
        assert netlist.outputs

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            random_netlist(0, 10, seed=0)
        with pytest.raises(ValueError):
            random_netlist(5, 0, seed=0)
        with pytest.raises(ValueError):
            random_netlist(5, 10, seed=0, max_fanin=1)

    def test_generated_netlist_is_simulable(self):
        from repro.circuits.simulator import simulate3

        netlist = random_netlist(8, 60, seed=77)
        values = simulate3(netlist, {net: 1 for net in netlist.inputs})
        assert all(values[po] in (0, 1) for po in netlist.outputs)


class TestLibrary:
    def test_available_names(self):
        names = available_circuits()
        assert "c17" in names and "s27" in names

    def test_c17(self):
        c17 = load_circuit("c17")
        assert c17.n_gates == 6
        assert len(c17.inputs) == 5

    def test_s27_scan_core(self):
        s27 = load_circuit("s27")
        assert len(s27.inputs) == 7
        assert s27.n_gates == 10

    def test_every_library_circuit_loads(self):
        for name in available_circuits():
            netlist = load_circuit(name)
            assert netlist.n_gates > 0

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            load_circuit("c9999")


class TestPaths:
    def test_c17_has_eleven_paths(self):
        c17 = load_circuit("c17")
        paths = list(enumerate_paths(c17))
        assert len(paths) == 11
        assert count_paths(c17) == 11

    def test_paths_start_at_inputs_end_at_outputs(self):
        c17 = load_circuit("c17")
        for path in enumerate_paths(c17):
            assert path.start in c17.inputs
            assert path.end in c17.outputs

    def test_paths_follow_connections(self):
        c17 = load_circuit("c17")
        for path in enumerate_paths(c17):
            for net, next_net in zip(path.nets, path.nets[1:]):
                assert net in c17.gates[next_net].inputs

    def test_limit_respected(self):
        c17 = load_circuit("c17")
        assert len(list(enumerate_paths(c17, limit=4))) == 4

    def test_count_matches_enumeration_on_generated(self):
        netlist = random_netlist(6, 25, seed=3)
        enumerated = len(list(enumerate_paths(netlist, limit=100_000)))
        assert enumerated == count_paths(netlist)

    def test_path_properties(self):
        path = Path(("a", "b", "c"))
        assert path.length == 2
        assert str(path) == "a -> b -> c"

    def test_empty_path_rejected(self):
        with pytest.raises(ValueError):
            Path(())

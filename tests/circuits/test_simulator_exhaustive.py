"""Exhaustive oracle for the 3-valued simulator on small circuits.

For every fully-specified input vector, 3-valued simulation must
equal 2-valued bit-parallel simulation; for every *partial* cube, the
3-valued result must be the exact consensus of all completions
(specified where all completions agree, X where they differ) — on
tree circuits, and conservative (never wrong, possibly X) in general.
"""

import itertools

import numpy as np
import pytest

from repro.circuits.bench_parser import parse_bench
from repro.circuits.generator import random_netlist
from repro.circuits.library import load_circuit
from repro.circuits.simulator import simulate3, simulate_patterns
from repro.core.trits import DC


@pytest.mark.parametrize("name", ["c17", "s27"])
def test_fully_specified_matches_bit_parallel(name):
    netlist = load_circuit(name)
    n = len(netlist.inputs)
    vectors = list(itertools.product((0, 1), repeat=n))[: 1 << min(n, 10)]
    patterns = np.asarray(vectors, dtype=bool)
    parallel = simulate_patterns(netlist, patterns)
    for row, bits in enumerate(vectors):
        serial = simulate3(netlist, dict(zip(netlist.inputs, bits)))
        for po in netlist.outputs:
            assert bool(parallel[po][row]) == bool(serial[po])


@pytest.mark.parametrize("seed", [10, 20, 30])
def test_partial_cubes_are_conservative(seed):
    """If simulate3 says 0/1 under a partial cube, every completion of
    the X inputs must produce that value."""
    netlist = random_netlist(5, 15, seed=seed)
    rng = np.random.default_rng(seed)
    for _ in range(20):
        mask = rng.random(5) < 0.5
        values = rng.integers(0, 2, 5)
        cube = {
            net: int(values[i])
            for i, net in enumerate(netlist.inputs)
            if mask[i]
        }
        partial = simulate3(netlist, cube)
        free = [net for net in netlist.inputs if net not in cube]
        for completion in itertools.product((0, 1), repeat=len(free)):
            full = dict(cube)
            full.update(zip(free, completion))
            exact = simulate3(netlist, full)
            for po in netlist.outputs:
                if partial[po] != DC:
                    assert exact[po] == partial[po]


def test_tree_circuit_is_exact():
    """On a fanout-free tree, 3-valued simulation is *exact*: X only
    where completions genuinely disagree."""
    netlist = parse_bench(
        "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nOUTPUT(y)\n"
        "n1 = AND(a, b)\nn2 = OR(c, d)\ny = NAND(n1, n2)"
    )
    inputs = netlist.inputs
    for specified in itertools.product((0, 1, DC), repeat=4):
        cube = {
            net: value
            for net, value in zip(inputs, specified)
            if value != DC
        }
        partial = simulate3(netlist, cube)["y"]
        free = [net for net in inputs if net not in cube]
        outcomes = set()
        for completion in itertools.product((0, 1), repeat=len(free)):
            full = dict(cube)
            full.update(zip(free, completion))
            outcomes.add(simulate3(netlist, full)["y"])
        expected = outcomes.pop() if len(outcomes) == 1 else DC
        assert partial == expected

"""Tests for the search-subsampling helper used on huge table rows."""


from repro.experiments.runner import _subsample
from repro.testdata.synthetic import SyntheticSpec, synthetic_test_set


def make_set(n_patterns=100, pattern_bits=50):
    return synthetic_test_set(
        SyntheticSpec(
            "sub", n_patterns=n_patterns, pattern_bits=pattern_bits,
            care_density=0.4, seed=3,
        )
    )


class TestSubsample:
    def test_small_set_returned_unchanged(self):
        test_set = make_set()
        assert _subsample(test_set, max_bits=10_000, seed=1) is test_set

    def test_large_set_reduced_under_cap(self):
        test_set = make_set()
        sample = _subsample(test_set, max_bits=1_000, seed=1)
        assert sample.total_bits <= 1_000
        assert sample.n_inputs == test_set.n_inputs

    def test_sampled_patterns_are_original_rows(self):
        test_set = make_set()
        sample = _subsample(test_set, max_bits=1_000, seed=1)
        originals = {test_set.pattern_string(i) for i in range(100)}
        for row in range(sample.n_patterns):
            assert sample.pattern_string(row) in originals

    def test_deterministic_under_seed(self):
        test_set = make_set()
        first = _subsample(test_set, max_bits=1_000, seed=7)
        second = _subsample(test_set, max_bits=1_000, seed=7)
        assert first.to_string() == second.to_string()

    def test_statistics_roughly_preserved(self):
        test_set = make_set(n_patterns=400)
        sample = _subsample(test_set, max_bits=4_000, seed=2)
        assert abs(sample.x_density() - test_set.x_density()) < 0.1

"""Tests for the checkpoint journal, task fingerprints and resume cache."""

import dataclasses
import json

import numpy as np
import pytest

from repro.core.blocks import BlockSet
from repro.core.config import CompressionConfig, EAParameters
from repro.core.optimizer import EAMVOptimizer, execute_run_task
from repro.experiments.checkpoint import (
    CheckpointStore,
    RunJournal,
    RunTaskCache,
    default_checkpoint_root,
    encode_outcome,
    task_fingerprint,
)
from repro.parallel import FaultToleranceStats

TINY_EA = EAParameters(
    population_size=4,
    children_per_generation=2,
    stagnation_limit=4,
    max_evaluations=40,
)
TINY_CONFIG = CompressionConfig(
    block_length=4, n_vectors=6, runs=2, ea=TINY_EA
)
BLOCKS = BlockSet.from_string("1010 0X10 1111 0000 10X1", 4)


def _tasks(config=TINY_CONFIG, seed=7, blocks=BLOCKS):
    return EAMVOptimizer(config, seed=seed).build_run_tasks(blocks)


class TestFingerprint:
    def test_stable_across_rebuilds(self):
        assert task_fingerprint(_tasks()[0]) == task_fingerprint(_tasks()[0])

    def test_distinguishes_runs_of_one_config(self):
        first, second = _tasks()
        assert task_fingerprint(first) != task_fingerprint(second)

    def test_sensitive_to_seed(self):
        assert task_fingerprint(_tasks(seed=7)[0]) != task_fingerprint(
            _tasks(seed=8)[0]
        )

    def test_sensitive_to_semantic_config(self):
        bigger = dataclasses.replace(TINY_CONFIG, n_vectors=8)
        assert task_fingerprint(_tasks()[0]) != task_fingerprint(
            _tasks(config=bigger)[0]
        )

    def test_sensitive_to_ea_parameters(self):
        tweaked = dataclasses.replace(
            TINY_CONFIG, ea=dataclasses.replace(TINY_EA, max_evaluations=41)
        )
        assert task_fingerprint(_tasks()[0]) != task_fingerprint(
            _tasks(config=tweaked)[0]
        )

    def test_sensitive_to_blocks(self):
        other = BlockSet.from_string("1010 0X10 1111 0000 1011", 4)
        assert task_fingerprint(_tasks()[0]) != task_fingerprint(
            _tasks(blocks=other)[0]
        )

    def test_insensitive_to_performance_knobs(self):
        """Kernel and cache settings never change results, so switching
        them must not invalidate journaled work."""
        tuned = dataclasses.replace(
            TINY_CONFIG, kernel="scalar", mv_cache_size=1
        )
        assert task_fingerprint(_tasks()[0]) == task_fingerprint(
            _tasks(config=tuned)[0]
        )


class TestOutcomeRoundTrip:
    def test_decode_restores_exact_outcome(self, tmp_path):
        task = _tasks()[0]
        outcome = execute_run_task(task)
        journal = RunJournal.open(tmp_path / "j.jsonl")
        # Force a full JSON round trip, exactly what disk storage does.
        journal.record(
            task_fingerprint(task),
            json.loads(json.dumps(encode_outcome(outcome))),
        )
        restored = RunTaskCache(journal=journal).get(task)
        assert restored is not None
        assert restored.rate == outcome.rate  # exact, not approx
        assert restored.run_index == outcome.run_index
        assert np.array_equal(
            restored.ea_result.best_genome, outcome.ea_result.best_genome
        )
        assert restored.mv_set == outcome.mv_set
        assert restored.ea_result.evaluations == outcome.ea_result.evaluations
        assert restored.ea_result.history == ()
        assert (
            restored.ea_result.mv_cache_warm_loaded
            == outcome.ea_result.mv_cache_warm_loaded
        )

    def test_decodes_journal_written_before_warm_start_field(self, tmp_path):
        """Journals predating ``mv_cache_warm_loaded`` decode as cold
        starts instead of raising — old resume journals stay usable."""
        task = _tasks()[0]
        outcome = execute_run_task(task)
        document = json.loads(json.dumps(encode_outcome(outcome)))
        del document["ea"]["mv_cache_warm_loaded"]
        journal = RunJournal.open(tmp_path / "j.jsonl")
        journal.record(task_fingerprint(task), document)
        restored = RunTaskCache(journal=journal).get(task)
        assert restored is not None
        assert restored.ea_result.mv_cache_warm_loaded == 0
        assert restored.rate == outcome.rate


class TestRunJournal:
    def test_round_trips_through_disk(self, tmp_path):
        path = tmp_path / "row.jsonl"
        journal = RunJournal.open(path)
        journal.record("abc", {"rate": 1.5})
        journal.record("def", {"rate": 2.5})
        reloaded = RunJournal.open(path)
        assert len(reloaded) == 2
        assert reloaded.get("abc") == {"rate": 1.5}

    def test_missing_file_is_empty(self, tmp_path):
        assert len(RunJournal.open(tmp_path / "absent.jsonl")) == 0

    def test_corrupt_lines_skipped(self, tmp_path):
        path = tmp_path / "row.jsonl"
        good = json.dumps(
            {"version": 1, "fingerprint": "ok", "outcome": {"rate": 3.0}}
        )
        path.write_text(
            good + "\n"
            + "{truncated...\n"                       # malformed JSON
            + '{"fingerprint": "no-version"}\n'        # missing version
            + '{"version": 99, "fingerprint": "v99", "outcome": {}}\n'
        )
        journal = RunJournal.open(path)
        assert len(journal) == 1
        assert journal.get("ok") == {"rate": 3.0}

    def test_record_rewrites_parseable_document(self, tmp_path):
        path = tmp_path / "row.jsonl"
        journal = RunJournal.open(path)
        journal.record("k", {"rate": 1.0})
        for line in path.read_text().splitlines():
            entry = json.loads(line)
            assert entry["version"] == 1


class TestRunTaskCache:
    def test_miss_then_hit_after_put(self, tmp_path):
        task = _tasks()[0]
        outcome = execute_run_task(task)
        stats = FaultToleranceStats()
        cache = RunTaskCache(
            journal=RunJournal.open(tmp_path / "j.jsonl"), stats=stats
        )
        assert cache.get(task) is None
        cache.put(task, outcome)
        restored = cache.get(task)
        assert restored is not None
        assert restored.rate == outcome.rate
        assert cache.misses == 1
        assert cache.hits == 1
        assert stats.resumed == 1

    def test_non_run_task_items_bypass_cache(self, tmp_path):
        cache = RunTaskCache(journal=RunJournal.open(tmp_path / "j.jsonl"))
        assert cache.get("not a task") is None
        cache.put("not a task", "not an outcome")  # silently ignored
        assert cache.misses == 0

    def test_unusable_entry_treated_as_miss(self, tmp_path):
        task = _tasks()[0]
        journal = RunJournal.open(tmp_path / "j.jsonl")
        journal.record(task_fingerprint(task), {"garbage": True})
        cache = RunTaskCache(journal=journal)
        assert cache.get(task) is None
        assert cache.misses == 1


class TestCheckpointStore:
    def test_default_root_honors_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert default_checkpoint_root() == tmp_path / "checkpoints"
        assert CheckpointStore.default().root == tmp_path / "checkpoints"

    def test_labels_map_to_distinct_journals(self, tmp_path):
        store = CheckpointStore(root=tmp_path)
        first = store.journal("table1:s298:seed42")
        second = store.journal("table1:s386:seed42")
        assert first.path != second.path
        assert first.path.parent == tmp_path

    def test_hostile_labels_sanitized(self, tmp_path):
        store = CheckpointStore(root=tmp_path)
        journal = store.journal("../../../etc/passwd")
        assert journal.path.parent == tmp_path

    def test_cache_shares_store_journal(self, tmp_path):
        store = CheckpointStore(root=tmp_path)
        task = _tasks()[0]
        outcome = execute_run_task(task)
        store.cache("label").put(task, outcome)
        restored = store.cache("label").get(task)
        assert restored is not None
        assert restored.rate == pytest.approx(outcome.rate)

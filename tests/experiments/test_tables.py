"""Integration tests for table building and formatting."""

import pytest

from repro.experiments.tables import (
    TABLE1_COLUMNS,
    TABLE2_COLUMNS,
    build_table1,
    build_table2,
    format_table,
)
from .test_runner import MICRO


@pytest.fixture(scope="module")
def table1_result():
    return build_table1(circuits=("s349", "s298"), budget=MICRO, seed=4)


@pytest.fixture(scope="module")
def table2_result():
    return build_table2(circuits=("s27",), budget=MICRO, seed=4)


class TestBuildTables:
    def test_table1_rows(self, table1_result):
        assert [row.circuit for row in table1_result.rows] == ["s349", "s298"]
        assert table1_result.columns == TABLE1_COLUMNS

    def test_table2_rows(self, table2_result):
        assert [row.circuit for row in table2_result.rows] == ["s27"]
        assert table2_result.columns == TABLE2_COLUMNS

    def test_unknown_selection_rejected(self):
        with pytest.raises(ValueError):
            build_table1(circuits=("nope",), budget=MICRO)

    def test_progress_callback(self):
        messages = []
        build_table1(
            circuits=("s349",), budget=MICRO, seed=4, progress=messages.append
        )
        assert len(messages) == 1
        assert "s349" in messages[0]


class TestTableResultStats:
    def test_measured_average(self, table1_result):
        value = table1_result.measured_average("9C")
        rates = [row.measured["9C"] for row in table1_result.rows]
        assert value == pytest.approx(sum(rates) / len(rates))

    def test_published_subset_average(self, table1_result):
        value = table1_result.published_subset_average("9C")
        assert value == pytest.approx((23.0 + 19.0) / 2)

    def test_wins_counting(self, table1_result):
        wins = table1_result.wins("EA", "9C")
        assert 0 <= wins <= len(table1_result.rows)

    def test_anchoring_on_every_row(self, table1_result):
        for row in table1_result.rows:
            assert abs(row.measured["9C"] - row.published["9C"]) <= 1.0


class TestFormatTable:
    def test_contains_all_circuits_and_averages(self, table1_result):
        text = format_table(table1_result)
        assert "s349" in text and "s298" in text
        assert "Average" in text
        assert "Table 1" in text

    def test_table2_title(self, table2_result):
        assert "Table 2" in format_table(table2_result)

    def test_published_values_present(self, table1_result):
        text = format_table(table1_result)
        assert "( 23.0)" in text  # s349's published 9C rate

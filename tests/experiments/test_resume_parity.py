"""Acceptance tests: a seeded table killed mid-sweep resumes to a
byte-identical result.

The scenario from the robustness issue: run a seeded ``table1`` build,
kill it partway (a chaos-injected worker death under the process
backend; a non-retryable injected raise under the thread backend),
restart with the checkpoint store — the resumed table must be
byte-identical to an uninterrupted run, with the journal demonstrably
serving completed runs (``resumed > 0``).
"""

import pytest

import repro.experiments.runner as runner_module
from repro.core.optimizer import execute_run_task
from repro.experiments.checkpoint import CheckpointStore
from repro.experiments.runner import ExperimentBudget
from repro.experiments.tables import build_table1, format_table
from repro.parallel import (
    Fault,
    FaultPlan,
    ProcessBackend,
    RetryPolicy,
    ThreadBackend,
    WorkerCrashError,
    chaos_wrap,
)
from repro.parallel.chaos import DIE, RAISE

MICRO = ExperimentBudget(
    runs=2,
    stagnation_limit=8,
    max_evaluations=250,
    kl_grid=((8, 16),),
    search_bit_cap=20_000,
)
CIRCUITS = ("s298", "s386")
SEED = 11


def _reference_text():
    """The uninterrupted serial build — the byte-parity baseline."""
    return format_table(build_table1(CIRCUITS, MICRO, seed=SEED))


@pytest.mark.chaos
@pytest.mark.slow
class TestResumeByteParity:
    def test_process_backend_worker_death_then_resume(
        self, tmp_path, monkeypatch
    ):
        reference = _reference_text()
        store = CheckpointStore(root=tmp_path / "checkpoints")
        # The EA-Best configuration's last run dies; both rows share the
        # task key, so whichever row worker reaches it first is killed
        # the way an OOM kill would — the pool breaks and, without a
        # retry policy, the whole build aborts mid-sweep.
        plan = FaultPlan(
            state_dir=tmp_path / "chaos",
            faults={"K8L16r1": {0: Fault(DIE)}},
        )
        monkeypatch.setattr(
            runner_module, "execute_run_task",
            chaos_wrap(execute_run_task, plan),
        )
        with pytest.raises(WorkerCrashError):
            build_table1(
                CIRCUITS, MICRO, seed=SEED,
                backend=ProcessBackend(2), checkpoint=store,
            )
        monkeypatch.setattr(runner_module, "execute_run_task", execute_run_task)

        resumed = build_table1(
            CIRCUITS, MICRO, seed=SEED,
            backend=ProcessBackend(2), checkpoint=store,
        )
        assert format_table(resumed) == reference
        assert resumed.fault_stats()["resumed"] > 0

    def test_thread_backend_terminal_failure_then_resume(
        self, tmp_path, monkeypatch
    ):
        reference = _reference_text()
        store = CheckpointStore(root=tmp_path / "checkpoints")
        # A non-retryable injected raise aborts the build the way a
        # real bug in one unit would — completed runs stay journaled.
        plan = FaultPlan(
            state_dir=tmp_path / "chaos",
            faults={"K8L16r1": {0: Fault(RAISE, retryable=False)}},
        )
        monkeypatch.setattr(
            runner_module, "execute_run_task",
            chaos_wrap(execute_run_task, plan),
        )
        with pytest.raises(RuntimeError, match="injected fault"):
            build_table1(
                CIRCUITS, MICRO, seed=SEED,
                backend=ThreadBackend(2), checkpoint=store,
            )
        monkeypatch.setattr(runner_module, "execute_run_task", execute_run_task)

        resumed = build_table1(
            CIRCUITS, MICRO, seed=SEED,
            backend=ThreadBackend(2), checkpoint=store,
        )
        assert format_table(resumed) == reference
        assert resumed.fault_stats()["resumed"] > 0

    def test_injected_worker_death_absorbed_with_retry_in_one_go(
        self, tmp_path
    ):
        """With a retry policy and the journal, the same kill is
        absorbed inside a single build: the crashed row retries, its
        journal serves the runs that had already finished."""
        import unittest.mock

        reference = _reference_text()
        store = CheckpointStore(root=tmp_path / "checkpoints")
        plan = FaultPlan(
            state_dir=tmp_path / "chaos",
            faults={"K8L16r1": {0: Fault(DIE)}},
        )
        with unittest.mock.patch.object(
            runner_module, "execute_run_task",
            chaos_wrap(execute_run_task, plan),
        ):
            result = build_table1(
                CIRCUITS, MICRO, seed=SEED,
                backend=ProcessBackend(2), checkpoint=store,
                retry=RetryPolicy(max_attempts=3, base_delay=0.01),
            )
        assert format_table(result) == reference
        stats = result.fault_stats()
        assert stats["resumed"] > 0

"""Integration tests for the per-row experiment runner."""

import pytest

from repro.experiments.runner import PAPER, QUICK, ExperimentBudget, run_row
from repro.testdata.registry import (
    TABLE1_STUCK_AT,
    TABLE2_PATH_DELAY,
    row_by_name,
)

# A micro budget so tests stay fast; correctness is budget-independent.
MICRO = ExperimentBudget(
    runs=2,
    stagnation_limit=8,
    max_evaluations=250,
    kl_grid=((8, 16),),
    search_bit_cap=20_000,
)


class TestRunRowStuckAt:
    def test_row_produces_all_columns(self):
        row = row_by_name(TABLE1_STUCK_AT, "s349")
        result = run_row(row, "stuck-at", budget=MICRO, seed=5)
        assert set(result.measured) == {"9C", "9C+HC", "EA", "EA-Best"}
        assert result.circuit == "s349"
        assert result.kind == "stuck-at"

    def test_nine_c_anchored(self):
        row = row_by_name(TABLE1_STUCK_AT, "s349")
        result = run_row(row, "stuck-at", budget=MICRO, seed=5)
        assert abs(result.measured["9C"] - row.published["9C"]) <= 1.0
        assert result.anchor_error <= 1.0

    def test_ea_best_at_least_ea(self):
        row = row_by_name(TABLE1_STUCK_AT, "s349")
        result = run_row(row, "stuck-at", budget=MICRO, seed=5)
        assert result.measured["EA-Best"] >= result.measured["EA"] - 1e-9

    def test_deterministic_under_seed(self):
        row = row_by_name(TABLE1_STUCK_AT, "s298")
        first = run_row(row, "stuck-at", budget=MICRO, seed=9)
        second = run_row(row, "stuck-at", budget=MICRO, seed=9)
        assert first.measured == second.measured

    def test_delta_helper(self):
        row = row_by_name(TABLE1_STUCK_AT, "s349")
        result = run_row(row, "stuck-at", budget=MICRO, seed=5)
        assert result.delta("9C") == pytest.approx(
            result.measured["9C"] - row.published["9C"]
        )


class TestRunRowPathDelay:
    def test_row_produces_all_columns(self):
        row = row_by_name(TABLE2_PATH_DELAY, "s27")
        result = run_row(row, "path-delay", budget=MICRO, seed=5)
        assert set(result.measured) == {"9C", "9C+HC", "EA1", "EA2"}

    def test_invalid_kind_rejected(self):
        row = row_by_name(TABLE2_PATH_DELAY, "s27")
        with pytest.raises(ValueError):
            run_row(row, "transition", budget=MICRO)


class TestSubsampling:
    def test_large_set_search_capped_but_rate_on_full(self):
        """A row bigger than the cap still reports a full-set rate."""
        row = row_by_name(TABLE1_STUCK_AT, "s953")  # 5220 bits
        tiny_cap = ExperimentBudget(
            runs=1,
            stagnation_limit=5,
            max_evaluations=120,
            kl_grid=((8, 16),),
            search_bit_cap=2_000,  # force subsampling
        )
        result = run_row(row, "stuck-at", budget=tiny_cap, seed=3)
        # Anchor (full set) must still hold even though search sampled.
        assert abs(result.measured["9C"] - row.published["9C"]) <= 1.0
        assert "EA" in result.measured


class TestBudgetValidation:
    def _budget(self, **overrides):
        fields = dict(
            runs=3,
            stagnation_limit=30,
            max_evaluations=1500,
            kl_grid=((8, 16),),
            search_bit_cap=50_000,
        )
        fields.update(overrides)
        return ExperimentBudget(**fields)

    def test_valid_budget_accepted(self):
        assert self._budget().runs == 3

    def test_zero_runs_rejected(self):
        with pytest.raises(ValueError, match="runs must be >= 1"):
            self._budget(runs=0)

    def test_negative_runs_rejected(self):
        with pytest.raises(ValueError, match="runs must be >= 1"):
            self._budget(runs=-2)

    def test_empty_kl_grid_rejected(self):
        with pytest.raises(ValueError, match="kl_grid"):
            self._budget(kl_grid=())

    def test_nonpositive_grid_entry_rejected(self):
        with pytest.raises(ValueError, match="kl_grid"):
            self._budget(kl_grid=((8, 16), (0, 4)))

    def test_zero_stagnation_rejected(self):
        with pytest.raises(ValueError, match="stagnation_limit"):
            self._budget(stagnation_limit=0)

    def test_zero_max_evaluations_rejected(self):
        with pytest.raises(ValueError, match="max_evaluations"):
            self._budget(max_evaluations=0)

    def test_none_max_evaluations_allowed(self):
        assert self._budget(max_evaluations=None).max_evaluations is None

    def test_zero_search_bit_cap_rejected(self):
        with pytest.raises(ValueError, match="search_bit_cap"):
            self._budget(search_bit_cap=0)


class TestBudgets:
    def test_quick_budget_values(self):
        assert QUICK.runs == 3
        assert QUICK.stagnation_limit == 30

    def test_paper_budget_matches_section4(self):
        assert PAPER.runs == 5
        assert PAPER.stagnation_limit == 500
        assert PAPER.max_evaluations is None

    def test_ea_parameters_inherit_paper_probabilities(self):
        params = QUICK.ea_parameters()
        assert params.crossover_probability == 0.30
        assert params.mutation_probability == 0.30
        assert params.inversion_probability == 0.10

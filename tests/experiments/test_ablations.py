"""Integration tests for the ablation studies."""

import pytest

from repro.core.config import EAParameters
from repro.experiments.ablations import (
    decoder_cost_study,
    kl_sweep,
    operator_sweep,
    seeding_ablation,
    subsumption_ablation,
)
from repro.testdata.synthetic import SyntheticSpec, synthetic_test_set


@pytest.fixture(scope="module")
def test_set():
    return synthetic_test_set(
        SyntheticSpec(
            "ablate", n_patterns=40, pattern_bits=24, care_density=0.45, seed=3
        )
    )


FAST_EA = EAParameters(stagnation_limit=6, max_evaluations=150)


class TestKLSweep:
    def test_sweep_covers_grid(self, test_set):
        points = kl_sweep(
            test_set, grid=((4, 8), (8, 9)), ea=FAST_EA, runs=1, seed=2
        )
        assert [p.label for p in points] == ["K=4,L=8", "K=8,L=9"]
        for point in points:
            assert point.best_rate >= point.mean_rate - 1e-9
            assert point.evaluations > 0


class TestOperatorSweep:
    def test_all_variants_run(self, test_set):
        points = operator_sweep(test_set, runs=1, seed=2, n_vectors=8,
                                block_length=6)
        assert len(points) == 5
        labels = {p.label for p in points}
        assert "paper (30/30/10)" in labels


class TestSeedingAblation:
    def test_two_points(self, test_set):
        points = seeding_ablation(
            test_set, block_length=8, n_vectors=9, runs=1, seed=2
        )
        assert len(points) == 2
        assert points[0].label.startswith("random")
        assert points[1].label.startswith("9C-seeded")


class TestSubsumptionAblation:
    def test_refined_never_worse(self, test_set):
        plain, refined = subsumption_ablation(
            test_set, block_length=6, n_vectors=8, runs=2, seed=2
        )
        assert refined.mean_rate >= plain.mean_rate - 1e-9
        assert refined.best_rate >= plain.best_rate - 1e-9


class TestDecoderCostStudy:
    def test_reports_both_methods(self, test_set):
        costs = decoder_cost_study(
            test_set, block_length=6, n_vectors=8, seed=2
        )
        assert set(costs) == {"9C", "EA"}
        for values in costs.values():
            assert values["payload_bits"] > 0
            assert values["code_table_bits"] > 0

"""Tests for the full EXPERIMENTS.md document writer."""

from repro.experiments.ablations import AblationPoint
from repro.experiments.report import experiments_markdown
from repro.experiments.tables import TABLE1_COLUMNS, TABLE2_COLUMNS, TableResult

from .test_report import fake_row


def fake_table(columns, kind):
    rows = []
    for circuit in ("s349", "s298"):
        base = fake_row(circuit, 48.0)
        rows.append(
            type(base)(
                circuit=base.circuit,
                kind=kind,
                test_set_bits=base.test_set_bits,
                care_density=base.care_density,
                anchor_error=base.anchor_error,
                measured={c: v for c, v in zip(columns, (20.0, 25.0, 48.0, 49.0))},
                published={c: v for c, v in zip(columns, (20.0, 26.0, 50.0, 52.0))},
            )
        )
    return TableResult(
        kind=kind,
        columns=columns,
        rows=tuple(rows),
        published_averages={},
    )


class TestExperimentsMarkdown:
    def test_document_structure(self):
        document = experiments_markdown(
            fake_table(TABLE1_COLUMNS, "stuck-at"),
            fake_table(TABLE2_COLUMNS, "path-delay"),
            ablations={
                "K/L sweep": [AblationPoint("K=8,L=9", 40.0, 41.0)],
            },
            budget_label="quick",
        )
        assert document.startswith("# EXPERIMENTS")
        assert "## Table 1 — stuck-at test sets" in document
        assert "## Table 2 — path-delay test sets" in document
        assert "## Figure 1 — the evolutionary algorithm" in document
        assert "## Section 3.3 example — subsumption" in document
        assert "### K/L sweep" in document
        assert "budget: quick" in document

    def test_shape_checks_embedded(self):
        document = experiments_markdown(
            fake_table(TABLE1_COLUMNS, "stuck-at"),
            fake_table(TABLE2_COLUMNS, "path-delay"),
            ablations={},
            budget_label="paper",
        )
        assert document.count("### Shape checks") == 2
        assert "budget: paper" in document

"""Tests for the EXPERIMENTS.md section writers."""

from repro.experiments.ablations import AblationPoint
from repro.experiments.report import (
    ablation_markdown,
    shape_check_markdown,
    table_markdown,
)
from repro.experiments.runner import RowResult
from repro.experiments.tables import TABLE1_COLUMNS, TableResult


def fake_row(circuit: str, ea: float) -> RowResult:
    return RowResult(
        circuit=circuit,
        kind="stuck-at",
        test_set_bits=1000,
        care_density=0.4,
        anchor_error=0.2,
        measured={"9C": 20.0, "9C+HC": 25.0, "EA": ea, "EA-Best": ea + 1.0},
        published={"9C": 20.0, "9C+HC": 26.0, "EA": 50.0, "EA-Best": 52.0},
    )


def fake_table() -> TableResult:
    return TableResult(
        kind="stuck-at",
        columns=TABLE1_COLUMNS,
        rows=(fake_row("s349", 48.0), fake_row("s298", 52.0)),
        published_averages={"9C": 42.6, "9C+HC": 46.8, "EA": 54.2,
                            "EA-Best": 55.9},
    )


class TestTableMarkdown:
    def test_contains_rows_and_average(self):
        text = table_markdown(fake_table(), "Table 1 (subset)")
        assert "| s349 |" in text
        assert "| s298 |" in text
        assert "**Average**" in text
        assert "### Table 1 (subset)" in text

    def test_reports_anchor_error(self):
        text = table_markdown(fake_table(), "t")
        assert "0.20" in text


class TestAblationMarkdown:
    def test_renders_points(self):
        points = [
            AblationPoint("K=8,L=9", 40.0, 42.0),
            AblationPoint("K=12,L=64", 45.0, 47.0),
        ]
        text = ablation_markdown(points, "K/L sweep")
        assert "| K=8,L=9 | 40.0 | 42.0 |" in text
        assert "### K/L sweep" in text


class TestShapeChecks:
    def test_all_pass_on_good_shape(self):
        text = shape_check_markdown(fake_table())
        assert "FAIL" not in text
        assert text.count("PASS") == 4

    def test_fails_when_ea_loses(self):
        bad_rows = (fake_row("s349", 10.0), fake_row("s298", 12.0))
        bad = TableResult(
            kind="stuck-at",
            columns=TABLE1_COLUMNS,
            rows=bad_rows,
            published_averages={},
        )
        text = shape_check_markdown(bad)
        assert "FAIL" in text

"""Table-level byte parity across the cache policy/persistence matrix.

The acceptance bar for the persistent, policy-pluggable MV cache: a
seeded table is *byte-identical* whichever eviction policy prices it,
whether persistence is off, cold, or warming from a previous run's
file, and whether the rows execute serially or in a process pool that
shares the persisted cache directory.  Timing aside, the cache
subsystem must be invisible in every measured number.
"""

import pytest

from repro.core.cache import POLICY_CHOICES
from repro.experiments.tables import build_table1, format_table
from repro.parallel import ProcessBackend

from .test_runner import MICRO

CIRCUITS = ("s298",)
SEED = 11


def rendered_table(**overrides):
    arguments = dict(circuits=CIRCUITS, budget=MICRO, seed=SEED)
    arguments.update(overrides)
    return format_table(build_table1(**arguments))


@pytest.fixture(scope="module")
def reference():
    return rendered_table(mv_cache_size=0)


class TestPolicyParity:
    @pytest.mark.parametrize("policy", POLICY_CHOICES)
    def test_policies_render_identical_tables(self, policy, reference):
        assert rendered_table(mv_cache_policy=policy) == reference

    def test_tiny_cache_eviction_pressure(self, reference):
        for policy in POLICY_CHOICES:
            assert (
                rendered_table(mv_cache_policy=policy, mv_cache_size=3)
                == reference
            )


@pytest.mark.slow
class TestPersistenceParity:
    def test_cold_then_warm_then_process_pool(
        self, tmp_path, monkeypatch, reference
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        # Cold start populates the cache directory ...
        assert rendered_table(mv_cache_persist=True) == reference
        # ... the warm rerun consumes it (same bytes out) ...
        assert rendered_table(mv_cache_persist=True) == reference
        # ... and a process pool both warms from and refreshes the
        # same files, under a non-default policy and explicit kernels.
        for kernel in ("auto", "bitpack", "gemm"):
            assert (
                rendered_table(
                    mv_cache_persist=True,
                    mv_cache_policy="2q",
                    kernel=kernel,
                    backend=ProcessBackend(2),
                )
                == reference
            )

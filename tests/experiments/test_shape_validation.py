"""Tests for TableResult's qualitative shape helpers."""

from repro.experiments.runner import RowResult
from repro.experiments.tables import TABLE1_COLUMNS, TableResult


def row(circuit, nine_c, nine_c_hc, ea, ea_best):
    return RowResult(
        circuit=circuit,
        kind="stuck-at",
        test_set_bits=1000,
        care_density=0.4,
        anchor_error=0.1,
        measured={
            "9C": nine_c, "9C+HC": nine_c_hc, "EA": ea, "EA-Best": ea_best,
        },
        published={
            "9C": nine_c, "9C+HC": nine_c_hc, "EA": ea, "EA-Best": ea_best,
        },
    )


def table(*rows):
    return TableResult(
        kind="stuck-at",
        columns=TABLE1_COLUMNS,
        rows=rows,
        published_averages={},
    )


class TestOrderingHolds:
    def test_paper_shape_passes(self):
        result = table(row("a", 20, 25, 50, 52), row("b", 30, 35, 55, 56))
        assert result.ordering_holds()

    def test_inverted_shape_fails(self):
        result = table(row("a", 50, 40, 20, 22))
        assert not result.ordering_holds()


class TestWins:
    def test_counts_strict_wins_only(self):
        result = table(
            row("a", 20, 25, 50, 52),   # EA beats 9C
            row("b", 30, 35, 30, 36),   # EA ties 9C -> not a win
        )
        assert result.wins("EA", "9C") == 1
        assert result.wins("9C", "EA") == 0

    def test_averages_over_subset(self):
        result = table(row("a", 20, 25, 50, 52), row("b", 40, 45, 60, 62))
        assert result.measured_average("9C") == 30.0
        assert result.published_subset_average("EA") == 55.0

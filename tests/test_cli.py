"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.core.kernels import kernel_unavailable_reason
from repro.parallel import ProcessBackend, SerialBackend, ThreadBackend

NATIVE_OK = kernel_unavailable_reason("native") is None


class TestParser:
    def test_table1_defaults(self):
        arguments = build_parser().parse_args(["table1"])
        assert arguments.command == "table1"
        assert arguments.budget == "quick"
        assert not arguments.full

    def test_table2_with_options(self):
        arguments = build_parser().parse_args(
            ["table2", "--circuits", "s27", "--budget", "paper", "--seed", "7"]
        )
        assert arguments.circuits == ["s27"]
        assert arguments.budget == "paper"
        assert arguments.seed == 7

    def test_compress_arguments(self):
        arguments = build_parser().parse_args(
            ["compress", "file.txt", "--k", "8", "--l", "9"]
        )
        assert arguments.k == 8 and arguments.l == 9

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_ablate_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["ablate", "nonsense"])

    def test_jobs_defaults_to_serial(self):
        for argv in (
            ["table1"],
            ["table2"],
            ["compress", "file.txt"],
            ["atpg", "c17"],
            ["ablate", "kl"],
            ["report"],
        ):
            arguments = build_parser().parse_args(argv)
            assert arguments.jobs == 1
            assert arguments.backend == "process"

    def test_jobs_and_backend_parsed(self):
        arguments = build_parser().parse_args(
            ["table1", "--seed", "1", "--jobs", "4", "--backend", "thread"]
        )
        assert arguments.jobs == 4
        assert arguments.backend == "thread"

    def test_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--jobs", "2", "--backend", "x"])


class TestKernelFlag:
    """Every command exposes --kernel {auto,bitpack,gemm,scalar}."""

    def test_kernel_defaults_to_auto(self):
        for argv in (
            ["table1"],
            ["table2"],
            ["compress", "file.txt"],
            ["atpg", "c17"],
            ["ablate", "kl"],
            ["report"],
        ):
            assert build_parser().parse_args(argv).kernel == "auto"

    def test_kernel_choices_parsed(self):
        for kernel in ("auto", "gemm", "bitpack", "scalar"):
            arguments = build_parser().parse_args(
                ["compress", "file.txt", "--kernel", kernel]
            )
            assert arguments.kernel == kernel

    def test_invalid_kernel_name_rejected_with_clear_error(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--kernel", "nonsense"])
        stderr = capsys.readouterr().err
        assert "invalid choice: 'nonsense'" in stderr
        assert "bitpack" in stderr  # the error names the valid kernels

    def test_kernel_documented_in_help(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compress", "--help"])
        help_text = capsys.readouterr().out
        assert "--kernel" in help_text
        assert "covering kernel" in help_text

    def test_compress_kernel_output_matches_auto(self, tmp_path, capsys):
        path = tmp_path / "patterns.txt"
        path.write_text(
            "\n".join(["11001100XXXX", "110011001111", "XXXX11001100"] * 6)
        )
        args = ["compress", str(path), "--k", "4", "--l", "6", "--runs", "1",
                "--stagnation", "5", "--max-evaluations", "120", "--seed", "3"]
        outputs = {}
        kernels = ("auto", "gemm", "bitpack", "scalar") + (
            ("native",) if NATIVE_OK else ()
        )
        for kernel in kernels:
            assert main([*args, "--kernel", kernel]) == 0
            outputs[kernel] = capsys.readouterr().out
        assert len(set(outputs.values())) == 1  # byte-identical output


class TestMVCacheSizeFlag:
    """Every command exposes --mv-cache-size (0 disables the cache)."""

    def test_defaults_to_package_default(self):
        from repro.core.fitness import DEFAULT_MV_CACHE_SIZE

        for argv in (
            ["table1"],
            ["table2"],
            ["compress", "file.txt"],
            ["atpg", "c17"],
            ["ablate", "kl"],
            ["report"],
        ):
            arguments = build_parser().parse_args(argv)
            assert arguments.mv_cache_size == DEFAULT_MV_CACHE_SIZE

    def test_value_parsed(self):
        arguments = build_parser().parse_args(
            ["table1", "--mv-cache-size", "0"]
        )
        assert arguments.mv_cache_size == 0

    def test_documented_in_help(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compress", "--help"])
        help_text = capsys.readouterr().out
        assert "--mv-cache-size" in help_text
        assert "match-column cache" in help_text

    def test_compress_output_cache_invariant(self, tmp_path, capsys):
        path = tmp_path / "patterns.txt"
        path.write_text(
            "\n".join(["11001100XXXX", "110011001111", "XXXX11001100"] * 6)
        )
        args = ["compress", str(path), "--k", "4", "--l", "6", "--runs", "1",
                "--stagnation", "5", "--max-evaluations", "120", "--seed", "3"]
        outputs = {}
        for size in ("0", "4", "16384"):
            assert main([*args, "--mv-cache-size", size]) == 0
            outputs[size] = capsys.readouterr().out
        assert len(set(outputs.values())) == 1  # byte-identical output


class TestMVCachePolicyFlags:
    """--mv-cache-policy / --mv-cache-persist on every command."""

    def test_defaults(self):
        for argv in (
            ["table1"],
            ["table2"],
            ["compress", "file.txt"],
            ["atpg", "c17"],
            ["ablate", "kl"],
            ["report"],
        ):
            arguments = build_parser().parse_args(argv)
            assert arguments.mv_cache_policy is None
            assert arguments.mv_cache_persist is False

    def test_policy_choices_parsed(self):
        from repro.core.cache import POLICY_CHOICES

        for policy in POLICY_CHOICES:
            arguments = build_parser().parse_args(
                ["table1", "--mv-cache-policy", policy]
            )
            assert arguments.mv_cache_policy == policy
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--mv-cache-policy", "mru"])

    def test_persist_negation(self):
        arguments = build_parser().parse_args(
            ["compress", "f", "--mv-cache-persist", "--no-mv-cache-persist"]
        )
        assert arguments.mv_cache_persist is False

    def test_documented_in_help(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compress", "--help"])
        help_text = capsys.readouterr().out
        assert "--mv-cache-policy" in help_text
        assert "--mv-cache-persist" in help_text

    def test_compress_output_policy_invariant(self, tmp_path, capsys):
        from repro.core.cache import POLICY_CHOICES

        path = tmp_path / "patterns.txt"
        path.write_text(
            "\n".join(["11001100XXXX", "110011001111", "XXXX11001100"] * 6)
        )
        args = ["compress", str(path), "--k", "4", "--l", "6", "--runs", "1",
                "--stagnation", "5", "--max-evaluations", "120", "--seed", "3",
                "--mv-cache-size", "4"]
        outputs = set()
        for policy in POLICY_CHOICES:
            assert main([*args, "--mv-cache-policy", policy]) == 0
            outputs.add(capsys.readouterr().out)
        assert len(outputs) == 1  # byte-identical output

    def test_compress_warm_start_reported_and_output_invariant(
        self, tmp_path, monkeypatch, capsys
    ):
        """The CI smoke contract: a --mv-cache-persist rerun reports a
        warm start on stderr, with stdout byte-identical to cold."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        path = tmp_path / "patterns.txt"
        path.write_text(
            "\n".join(["11001100XXXX", "110011001111", "XXXX11001100"] * 6)
        )
        from repro.tuning.profile import (
            TuningProfile,
            current_fingerprint,
            save_profile,
        )

        # Low dedup thresholds so the toy workload engages the cache.
        profile_path = save_profile(
            TuningProfile(
                mv_dedup_min_genomes=1,
                mv_dedup_min_table=1,
                mv_dedup_min_distinct=1,
                fingerprint=current_fingerprint(),
            ),
            tmp_path / "profile.json",
        )
        args = ["compress", str(path), "--k", "4", "--l", "6", "--runs", "1",
                "--stagnation", "5", "--max-evaluations", "120", "--seed", "3",
                "--profile", str(profile_path), "--mv-cache-persist"]
        assert main(args) == 0
        cold = capsys.readouterr()
        assert "mv cache: cold start" in cold.err
        assert main(args) == 0
        warm = capsys.readouterr()
        assert "mv cache: warm start" in warm.err
        assert warm.out == cold.out


class TestCacheCommand:
    def test_list_info_clear_roundtrip(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        from repro.core.cache import save_mv_cache
        from repro.core.fitness import MVMatchCache

        assert main(["cache", "list"]) == 0
        assert "(empty)" in capsys.readouterr().out
        cache = MVMatchCache(4)
        import numpy as np

        cache.put(7, np.array([1], dtype=np.uint8))
        save_mv_cache(cache, "f" * 64, "gemm", 8)
        assert main(["cache", "list"]) == 0
        listing = capsys.readouterr().out
        assert f"{'f' * 16}-gemm-K8-v1.npz" in listing
        assert "1 file(s)" in listing
        assert main(["cache", "info"]) == 0
        info = capsys.readouterr().out
        assert "policy: lru" in info
        assert "entries: 1" in info
        assert main(["cache", "clear"]) == 0
        assert "removed 1 file(s)" in capsys.readouterr().out
        assert main(["cache", "list"]) == 0
        assert "(empty)" in capsys.readouterr().out

    def test_explicit_dir_flag(self, tmp_path, capsys):
        assert main(["cache", "list", "--dir", str(tmp_path / "none")]) == 0
        assert "(empty)" in capsys.readouterr().out

    def test_default_mode_governs_both_cache_directories(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["cache", "list"]) == 0
        listing = capsys.readouterr().out
        assert str(tmp_path / "mv_cache") in listing
        assert str(tmp_path / "native") in listing

    @pytest.mark.skipif(not NATIVE_OK, reason="no C compiler")
    def test_native_builds_listed_and_cleared(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.core.kernels.build import compile_cached
        from repro.core.kernels.native import NATIVE_C_SOURCE

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        compile_cached(NATIVE_C_SOURCE, tmp_path / "native")
        assert main(["cache", "list"]) == 0
        listing = capsys.readouterr().out
        assert ".so" in listing
        assert main(["cache", "info"]) == 0
        info = capsys.readouterr().out
        assert "compiler:" in info
        assert "source_sha256:" in info
        assert main(["cache", "clear"]) == 0
        cleared = capsys.readouterr().out
        assert "removed 2 file(s)" in cleared  # .so + .json sidecar
        assert list((tmp_path / "native").iterdir()) == []


class TestKernelsCommand:
    def test_lists_every_backend_with_availability(self, capsys):
        assert main(["kernels"]) == 0
        output = capsys.readouterr().out
        for name in ("gemm", "bitpack", "scalar"):
            assert f"{name}: available" in output
        if NATIVE_OK:
            assert "native: available" in output
        else:
            assert "native: unavailable —" in output

    def test_reports_unavailability_reason(self, monkeypatch, capsys):
        from repro.core.kernels import native as native_module

        monkeypatch.setenv("REPRO_NATIVE_DISABLE", "1")
        native_module._reset_native_state()
        try:
            assert main(["kernels"]) == 0
            output = capsys.readouterr().out
            assert "native: unavailable — disabled via REPRO_NATIVE_DISABLE" in output
        finally:
            native_module._reset_native_state()

    def test_shape_prints_auto_pick(self, capsys):
        assert main(["kernels", "--shape", "32,3300,64,12"]) == 0
        output = capsys.readouterr().out
        expected = "native" if NATIVE_OK else "bitpack"
        assert (
            f"auto pick for shape C=32, D=3300, L=64, K=12: {expected}"
            in output
        )

    def test_bad_shape_is_a_usage_error(self, capsys):
        assert main(["kernels", "--shape", "1,2,3"]) == 2
        assert "expected C,D,L,K" in capsys.readouterr().err


class TestResolvedBackends:
    def test_jobs_one_resolves_serial(self):
        from repro.cli import _resolve_backend

        arguments = build_parser().parse_args(["table1", "--jobs", "1"])
        assert isinstance(_resolve_backend(arguments), SerialBackend)

    def test_jobs_n_resolves_pool(self):
        from repro.cli import _resolve_backend

        arguments = build_parser().parse_args(["table1", "--jobs", "3"])
        backend = _resolve_backend(arguments)
        assert isinstance(backend, ProcessBackend)
        assert backend.jobs == 3

    def test_thread_kind_resolves_thread_pool(self):
        from repro.cli import _resolve_backend

        arguments = build_parser().parse_args(
            ["table1", "--jobs", "3", "--backend", "thread"]
        )
        assert isinstance(_resolve_backend(arguments), ThreadBackend)


class TestCompressCommand:
    def test_compress_file(self, tmp_path, capsys):
        path = tmp_path / "patterns.txt"
        path.write_text(
            "# demo patterns\n"
            + "\n".join(["11001100XXXX", "110011001111", "XXXX11001100"] * 6)
        )
        code = main(
            [
                "compress",
                str(path),
                "--k", "4",
                "--l", "6",
                "--runs", "1",
                "--stagnation", "5",
                "--max-evaluations", "120",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "9C" in output and "EA" in output


class TestAtpgCommand:
    def test_atpg_c17(self, capsys):
        code = main(["atpg", "c17", "--k", "4", "--l", "8"])
        assert code == 0
        output = capsys.readouterr().out
        assert "fault coverage" in output
        assert "EA" in output


class TestJobsSmoke:
    """End-to-end --jobs: parallel output must equal the serial output."""

    ARGS = [
        "--k", "4",
        "--l", "6",
        "--runs", "2",
        "--stagnation", "5",
        "--max-evaluations", "120",
        "--seed", "3",
    ]

    def _patterns_file(self, tmp_path):
        path = tmp_path / "patterns.txt"
        path.write_text(
            "\n".join(["11001100XXXX", "110011001111", "XXXX11001100"] * 6)
        )
        return str(path)

    def test_compress_thread_jobs_matches_serial(self, tmp_path, capsys):
        path = self._patterns_file(tmp_path)
        assert main(["compress", path, *self.ARGS, "--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert (
            main(
                ["compress", path, *self.ARGS, "--jobs", "2",
                 "--backend", "thread"]
            )
            == 0
        )
        assert capsys.readouterr().out == serial

    @pytest.mark.slow
    def test_compress_process_jobs_matches_serial(self, tmp_path, capsys):
        path = self._patterns_file(tmp_path)
        assert main(["compress", path, *self.ARGS, "--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(["compress", path, *self.ARGS, "--jobs", "2"]) == 0
        assert capsys.readouterr().out == serial


class TestTuningFlags:
    """--profile / --mv-feedback on every command, plus `repro tune`."""

    EVERY_COMMAND = (
        ["table1"],
        ["table2"],
        ["compress", "file.txt"],
        ["atpg", "c17"],
        ["ablate", "kl"],
        ["report"],
    )

    def test_profile_defaults_to_none(self):
        for argv in self.EVERY_COMMAND:
            assert build_parser().parse_args(argv).profile is None

    def test_profile_path_parsed(self, tmp_path):
        from pathlib import Path

        arguments = build_parser().parse_args(
            ["table1", "--profile", str(tmp_path / "p.json")]
        )
        assert arguments.profile == Path(tmp_path / "p.json")

    def test_mv_feedback_defaults_to_auto(self):
        for argv in self.EVERY_COMMAND:
            assert build_parser().parse_args(argv).mv_feedback == "auto"

    def test_mv_feedback_choices(self):
        for choice in ("auto", "on", "off"):
            arguments = build_parser().parse_args(
                ["compress", "file.txt", "--mv-feedback", choice]
            )
            assert arguments.mv_feedback == choice
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--mv-feedback", "maybe"])

    def test_tune_parser_defaults(self):
        arguments = build_parser().parse_args(["tune"])
        assert arguments.command == "tune"
        assert arguments.profile is None
        assert not arguments.quick
        assert arguments.repeats == 3

    def test_flags_documented_in_help(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compress", "--help"])
        help_text = capsys.readouterr().out
        assert "--profile" in help_text
        assert "--mv-feedback" in help_text
        assert "repro tune" in help_text

    def test_tune_documented_in_top_level_help(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--help"])
        assert "tune" in capsys.readouterr().out

    @pytest.mark.slow
    def test_tune_writes_a_loadable_profile(self, tmp_path, capsys):
        from repro.tuning.profile import load_profile

        path = tmp_path / "profile.json"
        assert (
            main(
                ["tune", "--quick", "--repeats", "1", "--no-summary",
                 "--profile", str(path)]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert f"wrote {path}" in out
        profile = load_profile(path)  # valid for this machine
        assert profile.source.startswith("repro tune")

    def test_missing_profile_warns_and_still_runs(self, tmp_path, capsys):
        path = tmp_path / "patterns.txt"
        path.write_text(
            "\n".join(["11001100XXXX", "110011001111", "XXXX11001100"] * 6)
        )
        args = ["compress", str(path), "--k", "4", "--l", "6", "--runs", "1",
                "--stagnation", "5", "--max-evaluations", "120", "--seed", "3"]
        assert main(args) == 0
        baseline = capsys.readouterr().out
        assert (
            main([*args, "--profile", str(tmp_path / "absent.json")]) == 0
        )
        captured = capsys.readouterr()
        assert captured.out == baseline  # fell back to shipped defaults
        assert "ignoring tuning profile" in captured.err

    @pytest.mark.slow
    def test_compress_profile_and_feedback_output_matches_default(
        self, tmp_path, capsys
    ):
        from repro.tuning.probes import run_probes
        from repro.tuning.profile import save_profile

        profile_path = save_profile(
            run_probes(quick=True, repeats=1), tmp_path / "tuned.json"
        )
        path = tmp_path / "patterns.txt"
        path.write_text(
            "\n".join(["11001100XXXX", "110011001111", "XXXX11001100"] * 6)
        )
        args = ["compress", str(path), "--k", "4", "--l", "6", "--runs", "1",
                "--stagnation", "5", "--max-evaluations", "120", "--seed", "3"]
        outputs = {}
        for label, extra in {
            "default": [],
            "tuned": ["--profile", str(profile_path)],
            "feedback-on": ["--mv-feedback", "on"],
            "feedback-off": ["--mv-feedback", "off"],
            "tuned-feedback-off": [
                "--profile", str(profile_path), "--mv-feedback", "off"
            ],
        }.items():
            assert main([*args, *extra]) == 0
            outputs[label] = capsys.readouterr().out
        assert len(set(outputs.values())) == 1  # byte-identical output


class TestFaultToleranceFlags:
    """--retries / --task-timeout / --resume parsing and wiring."""

    EVERY_COMMAND = (
        ["table1"],
        ["table2"],
        ["compress", "file.txt"],
        ["atpg", "c17"],
        ["ablate", "kl"],
        ["report"],
    )

    def test_defaults(self):
        for argv in self.EVERY_COMMAND:
            arguments = build_parser().parse_args(argv)
            assert arguments.retries == 1
            assert arguments.task_timeout is None

    def test_values_parsed_on_every_command(self):
        for argv in self.EVERY_COMMAND:
            arguments = build_parser().parse_args(
                [*argv, "--retries", "3", "--task-timeout", "2.5"]
            )
            assert arguments.retries == 3
            assert arguments.task_timeout == 2.5

    def test_retries_map_to_policy(self):
        from repro.cli import _resolve_fault_tolerance

        arguments = build_parser().parse_args(["table1", "--retries", "2"])
        retry, timeout = _resolve_fault_tolerance(arguments)
        assert retry is not None
        assert retry.max_attempts == 3  # N retries = N+1 attempts
        assert timeout is None

    def test_zero_retries_disable_policy(self):
        from repro.cli import _resolve_fault_tolerance

        arguments = build_parser().parse_args(["table1", "--retries", "0"])
        retry, _ = _resolve_fault_tolerance(arguments)
        assert retry is None

    def test_negative_retries_rejected(self):
        from repro.cli import _resolve_fault_tolerance

        arguments = build_parser().parse_args(["table1", "--retries", "-1"])
        with pytest.raises(SystemExit):
            _resolve_fault_tolerance(arguments)

    def test_resume_flag_on_sweep_commands(self):
        for argv in (["table1"], ["table2"], ["ablate", "kl"], ["report"]):
            assert not build_parser().parse_args(argv).resume
            assert build_parser().parse_args([*argv, "--resume"]).resume

    def test_resume_not_offered_on_single_shot_commands(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compress", "file.txt", "--resume"])

    def test_resume_resolves_checkpoint_store(self, tmp_path, monkeypatch):
        from repro.cli import _resolve_checkpoint
        from repro.experiments.checkpoint import CheckpointStore

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        off = build_parser().parse_args(["table1"])
        assert _resolve_checkpoint(off) is None
        on = build_parser().parse_args(["table1", "--resume"])
        store = _resolve_checkpoint(on)
        assert isinstance(store, CheckpointStore)
        assert store.root == tmp_path / "checkpoints"

    def test_flags_documented_in_help(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--help"])
        text = capsys.readouterr().out
        assert "--retries" in text
        assert "--task-timeout" in text
        assert "--resume" in text

    def test_fault_summary_silent_when_uneventful(self, capsys):
        from repro.cli import _print_fault_summary

        _print_fault_summary({"attempts": 12, "retries": 0, "resumed": 0})
        assert capsys.readouterr().err == ""

    def test_fault_summary_on_stderr_when_eventful(self, capsys):
        from repro.cli import _print_fault_summary

        _print_fault_summary({"attempts": 12, "retries": 2, "resumed": 3})
        captured = capsys.readouterr()
        assert captured.out == ""  # stdout stays byte-stable
        assert "retries=2" in captured.err
        assert "resumed=3" in captured.err

    def test_compress_output_invariant_under_retries(self, tmp_path, capsys):
        path = tmp_path / "patterns.txt"
        path.write_text(
            "\n".join(["11001100XXXX", "110011001111", "XXXX11001100"] * 6)
        )
        args = ["compress", str(path), "--k", "4", "--l", "6", "--runs", "1",
                "--stagnation", "5", "--max-evaluations", "120", "--seed", "3"]
        assert main(args) == 0
        plain = capsys.readouterr().out
        assert main([*args, "--retries", "3", "--task-timeout", "600"]) == 0
        assert capsys.readouterr().out == plain

    @pytest.mark.slow
    def test_resumed_table_run_skips_journaled_work(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        args = ["table1", "--circuits", "s298", "--seed", "11", "--resume"]
        assert main(args) == 0
        first = capsys.readouterr()
        assert main(args) == 0
        second = capsys.readouterr()
        # Progress lines carry wall-clock timings; the rendered table
        # (everything after the progress block) must be byte-identical.
        assert second.out.split("\n\n", 1)[1] == first.out.split("\n\n", 1)[1]
        assert "resumed=" in second.err  # second run served from journal


class TestServeParser:
    def test_serve_defaults(self):
        arguments = build_parser().parse_args(["serve"])
        assert arguments.command == "serve"
        assert arguments.host == "127.0.0.1"
        assert arguments.port == 8477
        assert arguments.batch_window_ms == 5.0
        assert arguments.max_batch == 64
        assert arguments.max_queue == 256
        assert arguments.jobs == 1
        assert arguments.kernel == "auto"

    def test_serve_overrides(self):
        arguments = build_parser().parse_args(
            ["serve", "--port", "0", "--jobs", "4", "--batch-window-ms",
             "2.5", "--max-batch", "8", "--max-queue", "32",
             "--kernel", "bitpack", "--mv-cache-persist"]
        )
        assert arguments.port == 0
        assert arguments.jobs == 4
        assert arguments.batch_window_ms == 2.5
        assert arguments.max_batch == 8
        assert arguments.max_queue == 32
        assert arguments.kernel == "bitpack"
        assert arguments.mv_cache_persist

    def test_request_defaults(self):
        arguments = build_parser().parse_args(["request", "body.json"])
        assert arguments.command == "request"
        assert arguments.file == "body.json"
        assert arguments.endpoint is None

    def test_request_endpoint_choices(self):
        arguments = build_parser().parse_args(
            ["request", "-", "--endpoint", "fitness"]
        )
        assert arguments.endpoint == "fitness"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["request", "-", "--endpoint", "nope"])

    def test_serve_documented_in_help(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--help"])
        help_text = capsys.readouterr().out
        assert "--batch-window-ms" in help_text
        assert "byte-inert" in help_text


class TestRequestCommand:
    TABLE = {
        "patterns": ["01X10X", "X10011", "110100", "0XX01X"],
        "block_length": 3,
        "name": "cli-test",
    }

    def _write(self, tmp_path, body):
        import json

        path = tmp_path / "body.json"
        path.write_text(json.dumps(body))
        return str(path)

    def test_tables_request(self, tmp_path, capsys):
        import json

        assert main(["request", self._write(tmp_path, self.TABLE)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["block_length"] == 3
        assert len(payload["digest"]) == 64

    def test_fitness_request_matches_service(self, tmp_path, capsys):
        from repro.serve import (
            CompressionService,
            WarmRegistry,
            canonical_json,
        )

        body = {
            "table": self.TABLE,
            "n_vectors": 3,
            "genomes": ["01U1U0UUU", "UUUUUUUUU"],
        }
        path = self._write(tmp_path, body)
        assert main(["request", path, "--kernel", "bitpack"]) == 0
        out = capsys.readouterr().out
        reference = CompressionService(
            WarmRegistry(), kernel="bitpack"
        ).run_fitness(body)
        assert out.encode() == canonical_json(reference)

    def test_compress_request_is_deterministic(self, tmp_path, capsys):
        body = {
            "table": self.TABLE,
            "seed": 5,
            "config": {
                "n_vectors": 3,
                "runs": 1,
                "ea": {"population_size": 8, "max_generations": 2},
            },
        }
        path = self._write(tmp_path, body)
        assert main(["request", path]) == 0
        first = capsys.readouterr().out
        assert main(["request", path]) == 0
        assert capsys.readouterr().out == first
        import json

        assert json.loads(first)["seed"] == 5

    def test_invalid_json_fails_cleanly(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        assert main(["request", str(path)]) == 1
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "invalid JSON" in captured.err

    def test_protocol_error_fails_cleanly(self, tmp_path, capsys):
        body = {"table": self.TABLE, "n_vectors": 3}  # no genomes
        assert main(["request", self._write(tmp_path, body),
                     "--endpoint", "fitness"]) == 1
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "error:" in captured.err


class TestObjectivesFlag:
    """--objectives routes compress/atpg to the Pareto-front mode."""

    PATTERNS = "\n".join(["11001100XXXX", "110011001111", "XXXX11001100"] * 6)

    def _args(self, path):
        return [
            "compress", str(path), "--k", "4", "--l", "6", "--runs", "2",
            "--stagnation", "5", "--max-evaluations", "120", "--seed", "3",
        ]

    def test_default_is_single_objective(self):
        for argv in (["compress", "file.txt"], ["atpg", "c17"]):
            assert build_parser().parse_args(argv).objectives == "rate"

    def test_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["compress", "file.txt", "--objectives", "power"]
            )

    def test_explicit_rate_matches_default_output(self, tmp_path, capsys):
        path = tmp_path / "patterns.txt"
        path.write_text(self.PATTERNS)
        assert main(self._args(path)) == 0
        default = capsys.readouterr().out
        assert main([*self._args(path), "--objectives", "rate"]) == 0
        assert capsys.readouterr().out == default
        assert "### Pareto front" not in default

    def test_pareto_output_job_and_kernel_invariant(self, tmp_path, capsys):
        path = tmp_path / "patterns.txt"
        path.write_text(self.PATTERNS)
        base = [*self._args(path), "--objectives", "rate+area+time"]
        outputs = {}
        variants = {
            "serial": [],
            "jobs4": ["--jobs", "4", "--backend", "thread"],
            "gemm": ["--kernel", "gemm"],
            "bitpack": ["--kernel", "bitpack"],
        }
        for name, extra in variants.items():
            assert main([*base, *extra]) == 0
            outputs[name] = capsys.readouterr().out
        assert len(set(outputs.values())) == 1  # byte-identical fronts
        assert "### Pareto front (rate, area, time)" in outputs["serial"]
        assert "hypervolume" in outputs["serial"]

    def test_two_objective_front(self, tmp_path, capsys):
        path = tmp_path / "patterns.txt"
        path.write_text(self.PATTERNS)
        assert main(
            [*self._args(path), "--objectives", "rate+area"]
        ) == 0
        out = capsys.readouterr().out
        assert "### Pareto front (rate, area)" in out
        assert "Time cycles" not in out

"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_table1_defaults(self):
        arguments = build_parser().parse_args(["table1"])
        assert arguments.command == "table1"
        assert arguments.budget == "quick"
        assert not arguments.full

    def test_table2_with_options(self):
        arguments = build_parser().parse_args(
            ["table2", "--circuits", "s27", "--budget", "paper", "--seed", "7"]
        )
        assert arguments.circuits == ["s27"]
        assert arguments.budget == "paper"
        assert arguments.seed == 7

    def test_compress_arguments(self):
        arguments = build_parser().parse_args(
            ["compress", "file.txt", "--k", "8", "--l", "9"]
        )
        assert arguments.k == 8 and arguments.l == 9

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_ablate_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["ablate", "nonsense"])


class TestCompressCommand:
    def test_compress_file(self, tmp_path, capsys):
        path = tmp_path / "patterns.txt"
        path.write_text(
            "# demo patterns\n"
            + "\n".join(["11001100XXXX", "110011001111", "XXXX11001100"] * 6)
        )
        code = main(
            [
                "compress",
                str(path),
                "--k", "4",
                "--l", "6",
                "--runs", "1",
                "--stagnation", "5",
                "--max-evaluations", "120",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "9C" in output and "EA" in output


class TestAtpgCommand:
    def test_atpg_c17(self, capsys):
        code = main(["atpg", "c17", "--k", "4", "--l", "8"])
        assert code == 0
        output = capsys.readouterr().out
        assert "fault coverage" in output
        assert "EA" in output

"""Compatibility shim: metadata lives in ``pyproject.toml``.

Kept so ``pip install -e .`` also works on minimal environments where
the ``wheel`` package (needed by the PEP 660 editable-wheel path) or a
package index is unavailable — pip then falls back to the legacy
``setup.py develop`` route, which only needs setuptools.
"""

from setuptools import setup

setup()
